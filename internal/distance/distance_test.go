package distance_test

import (
	"errors"
	"math/rand/v2"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/distance"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

func TestAPSPSemiringMatchesFloydWarshall(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graphs.Weighted
	}{
		{"dense27", graphs.RandomWeighted(27, 0.4, 20, true, 1)},
		{"sparse27", graphs.RandomWeighted(27, 0.1, 50, true, 2)},
		{"undirected8", graphs.RandomWeighted(8, 0.5, 9, false, 3)},
		{"connected27", graphs.RandomConnectedWeighted(27, 0.15, 30, true, 4)},
		{"noncube20", graphs.RandomWeighted(20, 0.25, 25, true, 23)},
		{"noncube30", graphs.RandomConnectedWeighted(30, 0.2, 40, true, 24)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := clique.New(tc.g.N())
			res, err := distance.APSPSemiring(net, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			want, err := graphs.FloydWarshall(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal[int64](ring.MinPlus{}, res.Dist.Collect(), want) {
				t.Fatal("distances disagree with Floyd–Warshall")
			}
			if err := distance.ValidateRouting(tc.g, res.Dist.Collect(), res.Next.Collect()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAPSPSemiringNegativeWeights(t *testing.T) {
	g := graphs.NewWeighted(8, true)
	g.SetEdge(0, 1, 5)
	g.SetEdge(1, 2, -3)
	g.SetEdge(2, 3, 4)
	g.SetEdge(0, 3, 10)
	g.SetEdge(3, 0, 1)
	net := clique.New(8)
	res, err := distance.APSPSemiring(net, g)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := graphs.FloydWarshall(g)
	if !matrix.Equal[int64](ring.MinPlus{}, res.Dist.Collect(), want) {
		t.Fatal("negative-weight distances wrong")
	}
	if res.Dist.Rows[0][3] != 6 {
		t.Errorf("d(0,3) = %d, want 6 via the negative edge", res.Dist.Rows[0][3])
	}
}

func TestAPSPSemiringNegativeCycleRejected(t *testing.T) {
	g := graphs.NewWeighted(8, true)
	g.SetEdge(0, 1, 2)
	g.SetEdge(1, 0, -5)
	net := clique.New(8)
	if _, err := distance.APSPSemiring(net, g); err == nil {
		t.Fatal("negative cycle accepted")
	}
}

// TestAPSPSemiringNonCubeSize pins the padded-layout generalisation: the
// semiring APSP runs on non-cube cliques (the seed rejected n = 10 with
// ErrSize), while a graph/clique size mismatch is still an error.
func TestAPSPSemiringNonCubeSize(t *testing.T) {
	g := graphs.RandomWeighted(10, 0.3, 5, true, 5)
	net := clique.New(10)
	res, err := distance.APSPSemiring(net, g)
	if err != nil {
		t.Fatalf("non-cube n=10: %v", err)
	}
	want, err := graphs.FloydWarshall(g)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal[int64](ring.MinPlus{}, res.Dist.Collect(), want) {
		t.Fatal("non-cube distances disagree with Floyd–Warshall")
	}
	if _, err := distance.APSPSemiring(clique.New(11), g); !errors.Is(err, ccmm.ErrSize) {
		t.Fatalf("size mismatch: err = %v, want ErrSize", err)
	}
}

func TestAPSPSemiringRoundBudget(t *testing.T) {
	g := graphs.RandomWeighted(64, 0.2, 10, true, 6)
	net := clique.New(64)
	if _, err := distance.APSPSemiring(net, g); err != nil {
		t.Fatal(err)
	}
	// ⌈log₂ 64⌉ = 6 squarings at O(n^{1/3}) each; witnesses double width.
	if net.Rounds() > 6*2*(11*4+15) {
		t.Errorf("APSP used %d rounds; exceeds O(n^{1/3} log n) budget", net.Rounds())
	}
}

func TestAPSPSeidelMatchesBFS(t *testing.T) {
	for _, tc := range []struct {
		name   string
		g      *graphs.Graph
		engine ccmm.Engine
	}{
		{"connected16", graphs.GNP(16, 0.35, false, 7), ccmm.EngineFast},
		{"sparse16", graphs.GNP(16, 0.15, false, 8), ccmm.EngineFast},
		{"disconnected16", disconnected(16), ccmm.EngineFast},
		{"cycle27", graphs.Cycle(27, false), ccmm.Engine3D},
		{"gnp27", graphs.GNP(27, 0.2, false, 9), ccmm.Engine3D},
		{"gnp64auto", graphs.GNP(64, 0.08, false, 10), ccmm.EngineAuto},
		{"path16", graphs.Path(16, false), ccmm.EngineFast},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := clique.New(tc.g.N())
			d, err := distance.APSPSeidel(net, tc.engine, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			want := graphs.BFSAllPairs(tc.g)
			if !matrix.Equal[int64](ring.MinPlus{}, d.Collect(), want) {
				t.Fatal("Seidel distances disagree with BFS")
			}
		})
	}
}

func disconnected(n int) *graphs.Graph {
	g := graphs.NewGraph(n, false)
	for i := 0; i+1 < n/2; i++ {
		g.AddEdge(i, i+1)
	}
	for i := n / 2; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestAPSPSeidelRejectsDirected(t *testing.T) {
	net := clique.New(16)
	if _, err := distance.APSPSeidel(net, ccmm.EngineFast, graphs.Cycle(16, true)); err == nil {
		t.Fatal("directed graph accepted by Seidel")
	}
}

func TestDistanceProductSmallMatchesMinPlus(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 1))
	mp := ring.MinPlus{}
	for _, tc := range []struct {
		n      int
		engine ccmm.Engine
	}{
		{16, ccmm.EngineFast},
		{8, ccmm.Engine3D},
		{12, ccmm.EngineNaive},
	} {
		const m = 7
		a := randBounded(rng, tc.n, m)
		b := randBounded(rng, tc.n, m)
		net := clique.New(tc.n)
		p, err := distance.DistanceProductSmall(net, tc.engine, ccmm.Distribute(a), ccmm.Distribute(b), m)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		want := matrix.Mul[int64](mp, a, b)
		// Entries may exceed 2M = cap; those are reported as ∞ by the
		// embedding only if above 2M — but with inputs ≤ M every finite
		// output is ≤ 2M, so results must agree exactly.
		if !matrix.Equal[int64](mp, p.Collect(), want) {
			t.Fatalf("n=%d engine=%v: embedded distance product wrong", tc.n, tc.engine)
		}
	}
}

func randBounded(rng *rand.Rand, n int, m int64) *matrix.Dense[int64] {
	out := matrix.New[int64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.IntN(4) == 0 {
				out.Set(i, j, ring.Inf)
			} else {
				out.Set(i, j, rng.Int64N(m+1))
			}
		}
	}
	return out
}

func TestDistanceProductSmallRejectsOutOfRange(t *testing.T) {
	net := clique.New(16)
	a := ccmm.NewRowMat[int64](16)
	a.Rows[2][3] = 99
	if _, err := distance.DistanceProductSmall(net, ccmm.EngineFast, a, ccmm.NewRowMat[int64](16), 7); err == nil {
		t.Fatal("entry above M accepted")
	}
	b := ccmm.NewRowMat[int64](16)
	b.Rows[0][0] = -2
	if _, err := distance.DistanceProductSmall(net, ccmm.EngineFast, b, ccmm.NewRowMat[int64](16), 7); err == nil {
		t.Fatal("negative entry accepted")
	}
}

func TestAPSPBoundedTruncates(t *testing.T) {
	// A path graph: distances beyond M must come back infinite, those
	// within M exact.
	g := graphs.UnitWeights(graphs.Path(16, false))
	net := clique.New(16)
	const m = 4
	d, err := distance.APSPBounded(net, ccmm.EngineFast, distWeights(g), m)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 16; u++ {
		for v := 0; v < 16; v++ {
			want := int64(abs(u - v))
			got := d.Rows[u][v]
			if want <= m && got != want {
				t.Fatalf("d(%d,%d) = %d, want %d", u, v, got, want)
			}
			if want > m && !ring.IsInf(got) {
				t.Fatalf("d(%d,%d) = %d, want ∞ beyond bound %d", u, v, got, m)
			}
		}
	}
}

func distWeights(g *graphs.Weighted) *ccmm.RowMat[int64] {
	return ccmm.Distribute(g.Matrix())
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestAPSPSmallWeightsMatchesFloydWarshall(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graphs.Weighted
	}{
		{"connected16", graphs.RandomConnectedWeighted(16, 0.2, 4, true, 12)},
		{"sparse16", graphs.RandomWeighted(16, 0.15, 3, true, 13)},
		{"undirected16", graphs.RandomWeighted(16, 0.25, 5, false, 14)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := clique.New(tc.g.N())
			d, err := distance.APSPSmallWeights(net, ccmm.EngineFast, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			want, err := graphs.FloydWarshall(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal[int64](ring.MinPlus{}, d.Collect(), want) {
				t.Fatal("small-weight APSP disagrees with Floyd–Warshall")
			}
		})
	}
}

func TestAPSPSmallWeightsRejectsNonPositive(t *testing.T) {
	g := graphs.NewWeighted(16, true)
	g.SetEdge(0, 1, 0)
	net := clique.New(16)
	if _, err := distance.APSPSmallWeights(net, ccmm.EngineFast, g); !errors.Is(err, ccmm.ErrSize) {
		t.Fatalf("err = %v, want ErrSize for zero weight", err)
	}
}

func TestApproxDistanceProductBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 1))
	mp := ring.MinPlus{}
	const n, m = 16, 200
	for _, delta := range []float64{0.1, 0.3, 1.0} {
		a := randBoundedLarge(rng, n, m)
		b := randBoundedLarge(rng, n, m)
		net := clique.New(n)
		p, err := distance.ApproxDistanceProduct(net, ccmm.EngineFast, ccmm.Distribute(a), ccmm.Distribute(b), m, delta)
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.Mul[int64](mp, a, b)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				exact, approx := want.At(u, v), p.Rows[u][v]
				if ring.IsInf(exact) != ring.IsInf(approx) {
					t.Fatalf("δ=%v (%d,%d): infinity mismatch (exact %d, approx %d)", delta, u, v, exact, approx)
				}
				if ring.IsInf(exact) {
					continue
				}
				if approx < exact {
					t.Fatalf("δ=%v (%d,%d): approx %d underestimates %d", delta, u, v, approx, exact)
				}
				if float64(approx) > (1+delta)*float64(exact)+1e-6 {
					t.Fatalf("δ=%v (%d,%d): approx %d exceeds (1+δ)·%d", delta, u, v, approx, exact)
				}
			}
		}
	}
}

func randBoundedLarge(rng *rand.Rand, n int, m int64) *matrix.Dense[int64] {
	out := matrix.New[int64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch rng.IntN(5) {
			case 0:
				out.Set(i, j, ring.Inf)
			case 1:
				out.Set(i, j, rng.Int64N(10))
			default:
				out.Set(i, j, rng.Int64N(m+1))
			}
		}
	}
	return out
}

func TestAPSPApproxStretch(t *testing.T) {
	for _, tc := range []struct {
		name  string
		g     *graphs.Weighted
		delta float64
	}{
		{"connected16", graphs.RandomConnectedWeighted(16, 0.2, 30, true, 16), 0.25},
		{"sparse16", graphs.RandomWeighted(16, 0.2, 10, true, 17), 0.2},
		{"default-delta", graphs.RandomConnectedWeighted(16, 0.3, 8, true, 18), 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := clique.New(tc.g.N())
			d, stretch, err := distance.APSPApprox(net, ccmm.EngineFast, tc.g, distance.ApproxOpts{Delta: tc.delta})
			if err != nil {
				t.Fatal(err)
			}
			want, err := graphs.FloydWarshall(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if stretch < 1 || stretch > 3 {
				t.Fatalf("implausible stretch bound %v", stretch)
			}
			n := tc.g.N()
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					exact, approx := want.At(u, v), d.Rows[u][v]
					if ring.IsInf(exact) != ring.IsInf(approx) {
						t.Fatalf("(%d,%d): infinity mismatch", u, v)
					}
					if ring.IsInf(exact) {
						continue
					}
					if approx < exact {
						t.Fatalf("(%d,%d): approx %d below exact %d", u, v, approx, exact)
					}
					if float64(approx) > stretch*float64(exact)+1e-6 {
						t.Fatalf("(%d,%d): approx %d exceeds stretch %.4f × exact %d", u, v, approx, stretch, exact)
					}
				}
			}
		})
	}
}

func TestFindWitnessesCertifies(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 1))
	mp := ring.MinPlus{}
	n := 16
	a := randBounded(rng, n, 30)
	b := randBounded(rng, n, 30)
	net := clique.New(n)
	oracle := distance.MinPlusOracle(net, ccmm.EngineAuto)
	s, tm := ccmm.Distribute(a), ccmm.Distribute(b)
	p, err := oracle(s, tm)
	if err != nil {
		t.Fatal(err)
	}
	q, err := distance.FindWitnesses(net, oracle, s, tm, p, distance.WitnessOpts{Seed: 3, Repetitions: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul[int64](mp, a, b)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			w := q.Rows[u][v]
			if ring.IsInf(want.At(u, v)) {
				if w != ring.NoWitness {
					t.Fatalf("infinite pair (%d,%d) has witness", u, v)
				}
				continue
			}
			if w < 0 || w >= int64(n) {
				t.Fatalf("missing witness for (%d,%d)", u, v)
			}
			if a.At(u, int(w))+b.At(int(w), v) != want.At(u, v) {
				t.Fatalf("witness %d does not certify (%d,%d)", w, u, v)
			}
		}
	}
}

func TestFindWitnessesWithSmallWeightOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(20, 1))
	n := 16
	const m = 6
	a := randBounded(rng, n, m)
	b := randBounded(rng, n, m)
	net := clique.New(n)
	oracle := distance.SmallWeightOracle(net, ccmm.EngineFast, 2*m)
	s, tm := ccmm.Distribute(a), ccmm.Distribute(b)
	p, err := oracle(s, tm)
	if err != nil {
		t.Fatal(err)
	}
	q, err := distance.FindWitnesses(net, oracle, s, tm, p, distance.WitnessOpts{Seed: 4, Repetitions: 10})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if ring.IsInf(p.Rows[u][v]) {
				continue
			}
			w := q.Rows[u][v]
			if a.At(u, int(w))+b.At(int(w), v) != p.Rows[u][v] {
				t.Fatalf("witness %d does not certify (%d,%d)", w, u, v)
			}
		}
	}
}

func TestRoutingFromDistances(t *testing.T) {
	g := graphs.GNP(16, 0.3, false, 21)
	w := graphs.UnitWeights(g)
	net := clique.New(16)
	d, err := distance.APSPSeidel(net, ccmm.EngineFast, g)
	if err != nil {
		t.Fatal(err)
	}
	oracle := distance.MinPlusOracle(net, ccmm.EngineAuto)
	next, err := distance.RoutingFromDistances(net, oracle, distWeights(w), d, distance.WitnessOpts{Seed: 5, Repetitions: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := distance.ValidateRouting(w, d.Collect(), next.Collect()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRoutingCatchesCorruption(t *testing.T) {
	g := graphs.RandomConnectedWeighted(8, 0.4, 5, true, 22)
	net := clique.New(8)
	res, err := distance.APSPSemiring(net, g)
	if err != nil {
		t.Fatal(err)
	}
	dist := res.Dist.Collect()
	next := res.Next.Collect()
	if err := distance.ValidateRouting(g, dist, next); err != nil {
		t.Fatal(err)
	}
	// Corrupt one entry: point a reachable pair at a wrong hop.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			if u != v && !ring.IsInf(dist.At(u, v)) {
				bad := (int(next.At(u, v)) + 1) % 8
				if bad == u {
					bad = (bad + 1) % 8
				}
				next.Set(u, v, int64(bad))
				if err := distance.ValidateRouting(g, dist, next); err == nil {
					t.Fatal("corrupted routing table accepted")
				}
				return
			}
		}
	}
}
