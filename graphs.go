package algclique

import (
	"io"

	"github.com/algebraic-clique/algclique/internal/graphs"
)

// Graph is an unweighted simple graph on nodes 0..n-1; node v's adjacency
// row is its local input in the congested-clique model.
type Graph = graphs.Graph

// Weighted is a weighted graph represented by its min-plus weight matrix
// (0 on the diagonal, Inf for missing edges).
type Weighted = graphs.Weighted

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int, directed bool) *Graph { return graphs.NewGraph(n, directed) }

// NewWeighted returns an edgeless weighted graph on n nodes.
func NewWeighted(n int, directed bool) *Weighted { return graphs.NewWeighted(n, directed) }

// UnitWeights lifts an unweighted graph to unit edge weights.
func UnitWeights(g *Graph) *Weighted { return graphs.UnitWeights(g) }

// GNP returns an Erdős–Rényi G(n, p) graph drawn with the given seed.
func GNP(n int, p float64, directed bool, seed uint64) *Graph {
	return graphs.GNP(n, p, directed, seed)
}

// Cycle returns the n-cycle (directed: oriented forward).
func Cycle(n int, directed bool) *Graph { return graphs.Cycle(n, directed) }

// Path returns the n-node path.
func Path(n int, directed bool) *Graph { return graphs.Path(n, directed) }

// Complete returns K_n.
func Complete(n int, directed bool) *Graph { return graphs.Complete(n, directed) }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph { return graphs.CompleteBipartite(a, b) }

// Torus returns the rows×cols toroidal grid (girth 4 for dims ≥ 4).
func Torus(rows, cols int) *Graph { return graphs.Torus(rows, cols) }

// Petersen returns the Petersen graph (girth 5).
func Petersen() *Graph { return graphs.Petersen() }

// Heawood returns the Heawood graph (girth 6, extremal C4-free).
func Heawood() *Graph { return graphs.Heawood() }

// Tree returns a random tree.
func Tree(n int, seed uint64) *Graph { return graphs.Tree(n, seed) }

// PlantedCycle returns a sparse random graph with a planted k-cycle and
// the planted nodes in cycle order.
func PlantedCycle(n, k int, p float64, directed bool, seed uint64) (*Graph, []int) {
	return graphs.PlantedCycle(n, k, p, directed, seed)
}

// PreferentialAttachment returns a skew-degree random graph.
func PreferentialAttachment(n, m int, seed uint64) *Graph {
	return graphs.PreferentialAttachment(n, m, seed)
}

// RandomWeighted returns a weighted G(n, p) graph with weights in [1, maxW].
func RandomWeighted(n int, p float64, maxW int64, directed bool, seed uint64) *Weighted {
	return graphs.RandomWeighted(n, p, maxW, directed, seed)
}

// RandomConnectedWeighted returns a strongly connected weighted graph.
func RandomConnectedWeighted(n int, p float64, maxW int64, directed bool, seed uint64) *Weighted {
	return graphs.RandomConnectedWeighted(n, p, maxW, directed, seed)
}

// ReadGraph parses the plain edge-list format written by WriteGraph:
// a "n <count> directed|undirected" header followed by "<u> <v>" lines
// ('#' comments allowed).
func ReadGraph(r io.Reader) (*Graph, error) { return graphs.ReadEdgeList(r) }

// WriteGraph serialises a graph in the ReadGraph format.
func WriteGraph(w io.Writer, g *Graph) error { return graphs.WriteEdgeList(w, g) }

// ReadWeightedGraph parses the weighted edge-list format written by
// WriteWeightedGraph ("n <count> <kind> weighted" header, "<u> <v> <w>"
// lines).
func ReadWeightedGraph(r io.Reader) (*Weighted, error) { return graphs.ReadWeightedEdgeList(r) }

// WriteWeightedGraph serialises a weighted graph in the ReadWeightedGraph
// format.
func WriteWeightedGraph(w io.Writer, g *Weighted) error { return graphs.WriteWeightedEdgeList(w, g) }

// padGraph embeds g into a clique of size n by adding isolated nodes; all
// subgraph counts, cycle structure, and pairwise distances among original
// nodes are preserved.
func padGraph(g *Graph, n int) *Graph {
	if g.N() == n {
		return g
	}
	out := graphs.NewGraph(n, g.Directed())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if g.Directed() || u < v {
				out.AddEdge(u, v)
			}
		}
	}
	return out
}

// padWeighted embeds a weighted graph into a larger clique with the new
// nodes unreachable.
func padWeighted(g *Weighted, n int) *Weighted {
	if g.N() == n {
		return g
	}
	out := graphs.NewWeighted(n, g.Directed())
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u != v && g.HasEdge(u, v) && (g.Directed() || u < v) {
				out.SetEdge(u, v, g.Weight(u, v))
			}
		}
	}
	return out
}
