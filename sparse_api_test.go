package algclique_test

import (
	"errors"
	"reflect"
	"testing"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

func adjacencyMat(g *cc.Graph) cc.Mat {
	n := g.N()
	a := make(cc.Mat, n)
	for v := 0; v < n; v++ {
		a[v] = make([]int64, n)
		for _, u := range g.Neighbors(v) {
			a[v][u] = 1
		}
	}
	return a
}

// TestAutoRoutesSparseGNP is the PR's acceptance case: on GNP(n=100,
// p=8/n) the Auto session routes MatMul through the sparse engine with
// strictly fewer rounds than the dense plan, and the product is
// bit-identical to the dense engines.
func TestAutoRoutesSparseGNP(t *testing.T) {
	const n = 100
	a := adjacencyMat(cc.GNP(n, 8.0/n, false, 7))

	auto, err := cc.NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	pa, sa, err := auto.MatMul(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Routing != "sparse" {
		t.Fatalf("Auto routing = %q, want sparse", sa.Routing)
	}

	dense, err := cc.NewClique(n, cc.WithSparseThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	defer dense.Close()
	pd, sd, err := dense.MatMul(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Routing != "" {
		t.Fatalf("threshold-0 routing = %q, want empty (no census)", sd.Routing)
	}
	if sa.Rounds >= sd.Rounds {
		t.Fatalf("sparse route used %d rounds, dense plan %d — must be strictly fewer", sa.Rounds, sd.Rounds)
	}
	if !reflect.DeepEqual(pa, pd) {
		t.Fatal("sparse-routed product differs from the dense plan")
	}
	p3, _, err := cc.MatMul(a, a, cc.WithEngine(cc.Semiring3D))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa, p3) {
		t.Fatal("sparse-routed product differs from Engine3D")
	}
}

// TestSparseRoutingInStats: every routed product reports its decision; a
// dense input on an Auto session reports "dense".
func TestSparseRoutingInStats(t *testing.T) {
	const n = 64
	dense := adjacencyMat(cc.GNP(n, 0.5, false, 3))
	s, err := cc.NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, st, err := s.MatMul(dense, dense)
	if err != nil {
		t.Fatal(err)
	}
	if st.Routing != "dense" {
		t.Fatalf("dense input routing = %q, want dense", st.Routing)
	}
	// The ledger carries the same tag.
	ledger := s.Stats()
	if len(ledger.Ops) != 1 || ledger.Ops[0].Routing != "dense" {
		t.Fatalf("ledger routing = %+v", ledger.Ops)
	}

	// DistanceProduct and MatMulBool census too.
	sparse := adjacencyMat(cc.GNP(n, 2.0/n, false, 5))
	if _, st, err = s.MatMulBool(sparse, sparse); err != nil {
		t.Fatal(err)
	}
	if st.Routing == "" {
		t.Fatal("MatMulBool on an Auto session reported no routing decision")
	}
	d := make(cc.Mat, n)
	for v := range d {
		d[v] = make([]int64, n)
		for j := range d[v] {
			if sparse[v][j] == 0 {
				d[v][j] = cc.Inf
			} else {
				d[v][j] = 1
			}
		}
	}
	if _, st, err = s.DistanceProduct(d, d); err != nil {
		t.Fatal(err)
	}
	if st.Routing == "" {
		t.Fatal("DistanceProduct on an Auto session reported no routing decision")
	}
}

// TestForcedSparseEngineSession: WithEngine(Sparse) forces the engine and
// surfaces ErrSparseTooDense on dense inputs.
func TestForcedSparseEngineSession(t *testing.T) {
	const n = 64
	a := adjacencyMat(cc.GNP(n, 2.0/n, false, 11))
	s, err := cc.NewClique(n, cc.WithEngine(cc.Sparse))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, _, err := s.MatMul(a, a)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cc.MatMul(a, a, cc.WithEngine(cc.Semiring3D))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("forced sparse product differs from Engine3D")
	}

	dense := adjacencyMat(cc.GNP(n, 0.9, false, 12))
	if _, _, err := s.MatMul(dense, dense); !errors.Is(err, cc.ErrSparseTooDense) {
		t.Fatalf("forced sparse on dense input err = %v, want ErrSparseTooDense", err)
	}
}

// TestSquareAdjacencySparseSentinels: the documented restrictions surface
// as wrapped sentinels the session layer (and users) can test with
// errors.Is, at both the public and the subgraph layer.
func TestSquareAdjacencySparseSentinels(t *testing.T) {
	// Directed input.
	dir := cc.GNP(12, 0.2, true, 4)
	if _, _, err := cc.SquareAdjacencySparse(dir); !errors.Is(err, cc.ErrSparseDirected) {
		t.Fatalf("directed err = %v, want ErrSparseDirected", err)
	}

	// Too dense: both the public and the internal sentinel must match,
	// plus the engine-level one they wrap.
	_, _, err := cc.SquareAdjacencySparse(cc.Complete(20, false))
	if !errors.Is(err, cc.ErrSparseTooDense) {
		t.Fatalf("dense err = %v, want ErrSparseTooDense", err)
	}
	if !errors.Is(err, subgraph.ErrTooDense) || !errors.Is(err, ccmm.ErrTooDense) {
		t.Fatalf("dense err = %v must wrap the subgraph and ccmm sentinels", err)
	}

	// Too small under WithoutPadding; padded otherwise.
	small := cc.Cycle(5, false)
	if _, _, err := cc.SquareAdjacencySparse(small, cc.WithoutPadding()); !errors.Is(err, cc.ErrSparseTooSmall) {
		t.Fatalf("strict small err = %v, want ErrSparseTooSmall", err)
	}
	sq, st, err := cc.SquareAdjacencySparse(small)
	if err != nil {
		t.Fatalf("padded small instance: %v", err)
	}
	// The engine is forced on this path, so no planner decision is
	// reported (same contract as WithEngine(Sparse)); the engine's own
	// census appears in the phase ledger instead.
	if st.Routing != "" {
		t.Fatalf("sparse square routing = %q, want empty (forced engine)", st.Routing)
	}
	census := false
	for _, p := range st.Phases {
		if p.Name == "mmsparse/census" {
			census = true
		}
	}
	if !census {
		t.Fatalf("sparse square phases missing mmsparse/census: %+v", st.Phases)
	}
	want, _, err := cc.MatMul(adjacencyMat(small), adjacencyMat(small))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sq, want) {
		t.Fatal("padded sparse square differs from A²")
	}
}

// TestSparseTransportsAgree: the sparse route charges identical ledgers on
// the direct and wire transports, and survives full transport
// verification.
func TestSparseTransportsAgree(t *testing.T) {
	const n = 64
	a := adjacencyMat(cc.GNP(n, 2.0/n, false, 21))
	run := func(opts ...cc.SessionOption) cc.Stats {
		s, err := cc.NewClique(n, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		_, st, err := s.MatMul(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if st.Routing != "sparse" {
			t.Fatalf("routing = %q, want sparse", st.Routing)
		}
		return st
	}
	ds := run()
	ws := run(cc.WithWireTransport())
	if ds.Rounds != ws.Rounds || ds.Words != ws.Words {
		t.Fatalf("direct %d rounds / %d words, wire %d / %d", ds.Rounds, ds.Words, ws.Rounds, ws.Words)
	}
	run(cc.WithTransportVerification())
}

// TestSparseThresholdReachesInnerProducts: WithSparseThreshold governs
// products resolved deep inside graph algorithms too — the session arms
// the threshold on its network, so a threshold-0 session runs no census
// phase anywhere, and a default session censuses the inner A² product of
// CountTriangles.
func TestSparseThresholdReachesInnerProducts(t *testing.T) {
	const n = 64
	g := cc.GNP(n, 2.0/n, false, 31)

	hasPhase := func(st cc.Stats, name string) bool {
		for _, p := range st.Phases {
			if p.Name == name {
				return true
			}
		}
		return false
	}

	off, err := cc.NewClique(n, cc.WithSparseThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	_, stOff, err := off.CountTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	if hasPhase(stOff, "mmplan/census") {
		t.Fatalf("threshold-0 session still ran the density census: %+v", stOff.Phases)
	}

	on, err := cc.NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	tri, stOn, err := on.CountTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	if !hasPhase(stOn, "mmplan/census") {
		t.Fatalf("default session ran no census on CountTriangles' inner product: %+v", stOn.Phases)
	}
	triOff, _, err := off.CountTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	if tri != triOff {
		t.Fatalf("triangle counts diverge: census %d, static %d", tri, triOff)
	}
}
