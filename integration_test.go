package algclique_test

import (
	"math/rand/v2"
	"testing"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// TestIntegrationSweep runs every public algorithm on a stream of random
// instances of awkward (non-square, non-cube) sizes and cross-validates
// against the centralised references — the end-to-end contract of the
// library: pad, simulate, translate back, agree with ground truth.
func TestIntegrationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is slow")
	}
	rng := rand.New(rand.NewPCG(2025, 6))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.IntN(25)
		p := 0.1 + rng.Float64()*0.3
		seed := rng.Uint64()
		g := cc.GNP(n, p, false, seed)
		t.Logf("trial %d: n=%d p=%.2f", trial, n, p)

		tri, _, err := cc.CountTriangles(g)
		if err != nil {
			t.Fatal(err)
		}
		if want := graphs.CountTrianglesRef(g); tri != want {
			t.Fatalf("triangles %d != %d", tri, want)
		}

		c4, _, err := cc.CountFourCycles(g)
		if err != nil {
			t.Fatal(err)
		}
		if want := graphs.CountC4Ref(g); c4 != want {
			t.Fatalf("C4s %d != %d", c4, want)
		}

		c5, _, err := cc.CountFiveCycles(g)
		if err != nil {
			t.Fatal(err)
		}
		if want := graphs.CountC5Ref(g); c5 != want {
			t.Fatalf("C5s %d != %d", c5, want)
		}

		c6, _, err := cc.CountSixCycles(g)
		if err != nil {
			t.Fatal(err)
		}
		if want := graphs.CountC6Ref(g); c6 != want {
			t.Fatalf("C6s %d != %d", c6, want)
		}

		has4, _, err := cc.DetectFourCycle(g)
		if err != nil {
			t.Fatal(err)
		}
		if want := graphs.HasC4Ref(g); has4 != want {
			t.Fatalf("DetectFourCycle %v != %v", has4, want)
		}

		dolev, _, err := cc.CountTrianglesDolev(g)
		if err != nil {
			t.Fatal(err)
		}
		if dolev != tri {
			t.Fatalf("Dolev %d != algebraic %d", dolev, tri)
		}

		res, _, err := cc.APSPUnweighted(g)
		if err != nil {
			t.Fatal(err)
		}
		bfs := graphs.BFSAllPairs(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if res.Dist[u][v] != bfs.At(u, v) {
					t.Fatalf("Seidel d(%d,%d) = %d != %d", u, v, res.Dist[u][v], bfs.At(u, v))
				}
			}
		}

		w := cc.RandomConnectedWeighted(n, p, 1+rng.Int64N(15), true, seed)
		fw, err := graphs.FloydWarshall(w)
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := cc.APSP(w)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if exact.Dist[u][v] != fw.At(u, v) {
					t.Fatalf("APSP d(%d,%d) = %d != %d", u, v, exact.Dist[u][v], fw.At(u, v))
				}
			}
		}
		if err := cc.ValidateRouting(w, exact); err != nil {
			t.Fatal(err)
		}

		girth, ok, _, err := cc.Girth(g, cc.WithColourings(120), cc.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		wantG, wantOK := graphs.GirthRef(g)
		if ok != wantOK || (ok && girth != wantG) {
			t.Fatalf("girth (%d,%v) != (%d,%v)", girth, ok, wantG, wantOK)
		}
	}
}

// TestIntegrationInfSentinelsStable pins the public sentinel values: they
// are part of the API contract (callers compare against them).
func TestIntegrationInfSentinelsStable(t *testing.T) {
	if cc.Inf != ring.Inf || cc.NoHop != ring.NoWitness {
		t.Fatal("public sentinels diverged from internal ones")
	}
	if !cc.IsInf(cc.Inf) || cc.IsInf(0) || cc.IsInf(1<<40) {
		t.Fatal("IsInf misclassifies")
	}
}

// TestIntegrationDisconnectedWeighted checks Inf propagation through the
// public APSP paths on a disconnected weighted graph.
func TestIntegrationDisconnectedWeighted(t *testing.T) {
	g := cc.NewWeighted(12, true)
	g.SetEdge(0, 1, 3)
	g.SetEdge(1, 2, 4)
	g.SetEdge(5, 6, 1)
	res, _, err := cc.APSP(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[0][2] != 7 || !cc.IsInf(res.Dist[0][5]) || !cc.IsInf(res.Dist[2][0]) {
		t.Fatalf("disconnected distances wrong: %v", res.Dist[0])
	}
	if res.Path(0, 5) != nil {
		t.Error("path across components should be nil")
	}
	if p := res.Path(0, 2); len(p) != 3 || p[0] != 0 || p[2] != 2 {
		t.Errorf("path 0→2 = %v", p)
	}
}
