// Benchmarks reproducing Table 1 of "Algebraic Methods in the Congested
// Clique" (PODC 2015) as measured round counts on the exact simulator.
// Each benchmark corresponds to an experiment id in DESIGN.md §3 (T1.x),
// and reports:
//
//	rounds — synchronous communication rounds of one full run
//	words  — total words carried by links
//
// Wall-clock ns/op measures the *simulator*, not the model; rounds is the
// quantity the paper bounds. cmd/ccbench prints the same data as tables
// and fits the growth exponents recorded in EXPERIMENTS.md.
package algclique_test

import (
	"fmt"
	"testing"

	cc "github.com/algebraic-clique/algclique"
)

func report(b *testing.B, stats cc.Stats) {
	b.Helper()
	b.ReportMetric(float64(stats.Rounds), "rounds")
	b.ReportMetric(float64(stats.Words), "words")
}

func randSquare(n int, seed uint64) [][]int64 {
	g := cc.RandomWeighted(n, 0.99, 100, true, seed)
	out := make([][]int64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			if w := g.Weight(i, j); !cc.IsInf(w) {
				out[i][j] = w
			}
		}
	}
	return out
}

// BenchmarkMatMulSemiring is experiment T1.1: Table 1 row "matrix
// multiplication (semiring), O(n^{1/3}) rounds" on perfect-cube cliques,
// where the 3D layout has no multiplexing overhead (non-cube sizes are
// covered by BenchmarkDistanceProductNonCube).
func BenchmarkMatMulSemiring(b *testing.B) {
	for _, n := range []int{27, 64, 125, 216, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := randSquare(n, 1)
			c := randSquare(n, 2)
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.MatMul(a, c, cc.WithEngine(cc.Semiring3D))
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}

// BenchmarkMatMulFast is experiment T1.2: Table 1 row "matrix
// multiplication (ring), O(n^ρ) rounds" via the Strassen-backed bilinear
// simulation (σ = log₂7; the paper's exponent uses Le Gall's scheme).
func BenchmarkMatMulFast(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := randSquare(n, 3)
			c := randSquare(n, 4)
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.MatMul(a, c, cc.WithEngine(cc.Fast))
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}

// BenchmarkDistanceProductNonCube compares the padded 3D engine against
// the naive baseline for min-plus products on non-cube clique sizes — the
// sizes that used to fall back to the Θ(n)-round gather. The ccbench
// x4-mm-padded experiment emits the same comparison as JSON.
func BenchmarkDistanceProductNonCube(b *testing.B) {
	for _, n := range []int{60, 100, 200} {
		a := randSquare(n, 41)
		c := randSquare(n, 42)
		for _, eng := range []cc.Engine{cc.Semiring3D, cc.Naive} {
			b.Run(fmt.Sprintf("%v/n=%d", eng, n), func(b *testing.B) {
				var stats cc.Stats
				for i := 0; i < b.N; i++ {
					var err error
					_, stats, err = cc.DistanceProduct(a, c, cc.WithEngine(eng))
					if err != nil {
						b.Fatal(err)
					}
				}
				report(b, stats)
			})
		}
	}
}

// BenchmarkMatMulNaive anchors T1.1/T1.2 against the Θ(n)-round
// learn-everything baseline.
func BenchmarkMatMulNaive(b *testing.B) {
	for _, n := range []int{27, 64, 216} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := randSquare(n, 5)
			c := randSquare(n, 6)
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.MatMul(a, c, cc.WithEngine(cc.Naive))
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}

// BenchmarkTriangles is experiment T1.3: Table 1 row "triangle counting":
// the algebraic O(n^ρ) algorithm versus the Dolev et al. O(n^{1/3})
// combinatorial baseline on the same graphs.
func BenchmarkTriangles(b *testing.B) {
	for _, n := range []int{64, 256} {
		g := cc.GNP(n, 0.25, false, 7)
		b.Run(fmt.Sprintf("algebraic/n=%d", n), func(b *testing.B) {
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.CountTriangles(g, cc.WithEngine(cc.Fast))
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
		b.Run(fmt.Sprintf("dolev/n=%d", n), func(b *testing.B) {
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.CountTrianglesDolev(g)
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}

// BenchmarkC4Detect is experiment T1.4: Table 1 row "4-cycle detection,
// O(1) rounds" — rounds must stay flat as n grows.
func BenchmarkC4Detect(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := cc.GNP(n, 3.0/float64(n), false, 8)
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.DetectFourCycle(g)
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}

// BenchmarkC4Count is experiment T1.5: Table 1 row "4-cycle counting,
// O(n^ρ) rounds".
func BenchmarkC4Count(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := cc.GNP(n, 0.2, false, 9)
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.CountFourCycles(g, cc.WithEngine(cc.Fast))
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}

// BenchmarkKCycle is experiment T1.6: Table 1 row "k-cycle detection,
// 2^{O(k)} n^ρ rounds". Cycle-free instances with a fixed number of
// colourings measure the deterministic per-colouring cost (a planted-cycle
// search stops early after a random number of trials); rounds therefore
// reads as "rounds per two colourings".
func BenchmarkKCycle(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		for _, n := range []int{16, 64} {
			b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
				g := cc.Tree(n, 10) // acyclic: every colouring runs fully
				var stats cc.Stats
				for i := 0; i < b.N; i++ {
					found, s, err := cc.DetectCycle(g, k, cc.WithColourings(2), cc.WithSeed(11))
					if err != nil {
						b.Fatal(err)
					}
					if found {
						b.Fatal("false positive on a tree")
					}
					stats = s
				}
				report(b, stats)
			})
		}
	}
}

// BenchmarkGirth is experiment T1.7: Table 1 row "girth, Õ(n^ρ)":
// the dense branch (colour-coding), the sparse branch (full gather), and
// the directed doubling algorithm.
func BenchmarkGirth(b *testing.B) {
	b.Run("dense/n=64", func(b *testing.B) {
		g := cc.GNP(64, 0.5, false, 12)
		var stats cc.Stats
		for i := 0; i < b.N; i++ {
			_, ok, s, err := cc.Girth(g, cc.WithColourings(40), cc.WithSeed(13))
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				b.Fatal("dense graph reported acyclic")
			}
			stats = s
		}
		report(b, stats)
	})
	b.Run("sparse/n=64", func(b *testing.B) {
		g := cc.Cycle(64, false)
		var stats cc.Stats
		for i := 0; i < b.N; i++ {
			_, _, s, err := cc.Girth(g)
			if err != nil {
				b.Fatal(err)
			}
			stats = s
		}
		report(b, stats)
	})
	b.Run("directed/n=64", func(b *testing.B) {
		g := cc.GNP(64, 0.05, true, 14)
		var stats cc.Stats
		for i := 0; i < b.N; i++ {
			_, _, s, err := cc.Girth(g)
			if err != nil {
				b.Fatal(err)
			}
			stats = s
		}
		report(b, stats)
	})
}

// BenchmarkAPSPSemiring is experiment T1.8: Table 1 row "weighted directed
// APSP, O(n^{1/3} log n)" with routing tables.
func BenchmarkAPSPSemiring(b *testing.B) {
	for _, n := range []int{27, 64, 125} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := cc.RandomConnectedWeighted(n, 0.2, 50, true, 15)
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.APSP(g)
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}

// BenchmarkAPSPSmallWeights is experiment T1.9: Table 1 row "APSP with
// weighted diameter U, Õ(U·n^ρ)": rounds grow with U at fixed n.
func BenchmarkAPSPSmallWeights(b *testing.B) {
	for _, maxW := range []int64{1, 4, 8} {
		b.Run(fmt.Sprintf("n=64/maxW=%d", maxW), func(b *testing.B) {
			g := cc.RandomConnectedWeighted(64, 0.15, maxW, true, 16)
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.APSPSmallWeights(g, cc.WithEngine(cc.Fast))
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}

// BenchmarkAPSPApprox is experiment T1.10: Table 1 row "(1+o(1))-approx
// APSP, O(n^{ρ+o(1)})" — coarser δ trades stretch for rounds.
func BenchmarkAPSPApprox(b *testing.B) {
	for _, delta := range []float64{0.5, 0.25} {
		b.Run(fmt.Sprintf("n=64/delta=%.2f", delta), func(b *testing.B) {
			g := cc.RandomConnectedWeighted(64, 0.15, 40, true, 17)
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, _, stats, err = cc.APSPApprox(g, cc.WithEngine(cc.Fast), cc.WithDelta(delta))
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}

// BenchmarkAPSPSeidel is experiment T1.11: Table 1 row "unweighted
// undirected APSP, O(n^ρ)" via Seidel's algorithm.
func BenchmarkAPSPSeidel(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := cc.GNP(n, 0.15, false, 18)
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.APSPUnweighted(g, cc.WithEngine(cc.Fast))
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}

// BenchmarkAPSPNaive anchors T1.8–T1.11 against the Θ(n)-round baseline.
func BenchmarkAPSPNaive(b *testing.B) {
	for _, n := range []int{27, 64, 125} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := cc.RandomConnectedWeighted(n, 0.2, 50, true, 19)
			var stats cc.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cc.APSPNaive(g)
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, stats)
		})
	}
}
