// Package algclique is a simulation library for the algebraic
// congested-clique algorithms of Censor-Hillel, Kaski, Korhonen, Lenzen,
// Paz and Suomela, "Algebraic Methods in the Congested Clique" (PODC 2015).
//
// The congested clique is a synchronous message-passing model: n nodes on a
// complete network, one O(log n)-bit message per ordered pair per round.
// This package runs the paper's algorithms on an exact simulator that
// charges rounds precisely, and exposes:
//
//   - distributed matrix multiplication over semirings (O(n^{1/3}) rounds)
//     and rings (O(n^{1-2/σ}) rounds via bilinear schemes — Theorem 1),
//   - triangle and 4-cycle counting, k-cycle detection by colour-coding,
//     and constant-round 4-cycle detection (Corollary 2, Theorems 3–4),
//   - girth computation (Theorem 5 / Corollary 16),
//   - exact, small-weight, and (1+ε)-approximate all-pairs shortest paths
//     with routing tables (Corollaries 6–8, Theorem 9, §3.4 witnesses),
//   - the combinatorial baselines of Table 1.
//
// The primary entry point is the session API: NewClique builds a reusable
// simulated clique whose engine plan, networks, and buffers persist across
// operations, and every algorithm is a method on it (see Clique and
// DESIGN.md). The package-level functions are one-shot conveniences that
// build a throwaway session per call.
//
// Every operation returns a Stats value with the measured round count and a
// per-phase breakdown — the paper's "evaluation" reproduced as
// measurements. Semiring (3D) products run on any clique size via a padded
// cube layout, so min-plus entry points never pad; the bilinear engine
// still needs perfect-square clique sizes, and those entry points
// transparently pad the instance with isolated nodes unless WithoutPadding
// is set.
package algclique

import (
	"context"
	"fmt"

	"github.com/algebraic-clique/algclique/internal/bilinear"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// Inf is the distance value meaning "unreachable" and the min-plus
// semiring's additive identity.
const Inf int64 = ring.Inf

// NoHop marks a missing routing-table entry (unreachable pair).
const NoHop int64 = ring.NoWitness

// IsInf reports whether a distance value means "unreachable".
func IsInf(d int64) bool { return ring.IsInf(d) }

// Mat is a square dense matrix in row-major [][]int64 form, the input and
// output type of the matrix entry points.
type Mat = [][]int64

// Engine selects the distributed multiplication algorithm behind the
// algebraic entry points.
type Engine int

const (
	// Auto picks the fastest engine the (padded) clique size supports,
	// and routes individual products through the sparse tile engine when
	// a one-round density census predicts it beats the dense plan (see
	// WithSparseThreshold and Stats.Routing).
	Auto Engine = iota
	// Fast is the bilinear-scheme algorithm of §2.2 (Strassen-backed).
	Fast
	// Semiring3D is the 3D algorithm of §2.1.
	Semiring3D
	// Naive is the learn-everything baseline.
	Naive
	// Sparse is the density-aware sparse tile engine (the §1.2 remark
	// generalised): O((ρ_A·ρ_B)^{1/3}/n^{2/3} + 1) rounds on operands
	// with Σ ca(y)·rb(y) < 2n², where ρ counts operand nonzeros. Forcing
	// it rejects denser operands with an error wrapping ErrSparseTooDense
	// and needs n ≥ 8; under Auto the same engine is chosen per product,
	// with a transparent dense fallback instead of the error.
	Sparse
)

// String implements fmt.Stringer.
func (e Engine) String() string { return e.internal().String() }

func (e Engine) internal() ccmm.Engine {
	switch e {
	case Fast:
		return ccmm.EngineFast
	case Semiring3D:
		return ccmm.Engine3D
	case Naive:
		return ccmm.EngineNaive
	case Sparse:
		return ccmm.EngineSparse
	default:
		return ccmm.EngineAuto
	}
}

// PhaseStat is the cost of one named algorithm phase.
type PhaseStat struct {
	Name   string
	Rounds int64
	Words  int64
}

// Stats reports the measured communication cost of one simulated run.
type Stats struct {
	// N is the clique size the algorithm ran on (after any padding).
	N int
	// PaddedFrom is the original instance size when padding was applied,
	// and 0 otherwise.
	PaddedFrom int
	// Rounds is the total number of synchronous communication rounds.
	Rounds int64
	// Words is the total number of words carried by links.
	Words int64
	// Faults ledgers every fault injected into the operation
	// (WithFaultInjection); zero when no plan was armed.
	Faults FaultStats
	// Attempts is how many times the operation's product ran — 1 for a
	// clean run, more when certification retried it, 0 for operations
	// without a retryable product (graph algorithms).
	Attempts int
	// Certified reports whether the returned result passed certification
	// (WithCertification).
	Certified bool
	// Routing reports how the density-aware planner executed the
	// operation's product when its engine selection is Auto: "sparse"
	// (the census routed it through the sparse tile engine), "dense"
	// (the census chose the resolved dense engine), or "dense-fallback"
	// (sparse was predicted but the engine's exact Σ ca·rb bound failed
	// mid-call, so the dense engine ran). Empty when no census ran — a
	// forced engine, a disabled threshold (WithSparseThreshold(0)), or
	// an operation without a single routed product.
	Routing string
	// Phases breaks the cost down by algorithm phase.
	Phases []PhaseStat
}

// statsFrom converts a simulator accounting snapshot into the public Stats
// for an instance originally of size orig.
func statsFrom(st clique.Stats, orig int) Stats {
	out := Stats{N: st.N, Rounds: st.Rounds, Words: st.Words, Faults: st.Faults}
	if st.N != orig {
		out.PaddedFrom = orig
	}
	out.Phases = make([]PhaseStat, len(st.Phases))
	for i, p := range st.Phases {
		out.Phases[i] = PhaseStat{Name: p.Name, Rounds: p.Rounds, Words: p.Words}
	}
	return out
}

// Option configures a simulation. Options come in two scopes: SessionOption
// values configure a session for its whole lifetime (engine, padding
// policy, worker pool), CallOption values configure one operation (seed,
// delta, round limit, context, …). The package-level one-shot functions
// accept both kinds; NewClique accepts session options and Clique methods
// accept call options.
type Option interface {
	apply(*config)
}

// SessionOption is an Option fixed for a session's lifetime: it selects the
// engine plan, the padding policy, and the simulator worker pool, which are
// resolved once at NewClique and shared by every subsequent operation.
type SessionOption interface {
	Option
	sessionOption()
}

// CallOption is an Option scoped to a single operation: randomisation
// seeds, approximation and colour-coding parameters, round budgets, and
// cancellation contexts.
type CallOption interface {
	Option
	callOption()
}

type sessionOpt func(*config)

func (o sessionOpt) apply(c *config) { o(c) }
func (o sessionOpt) sessionOption()  {}

type callOpt func(*config)

func (o callOpt) apply(c *config) { o(c) }
func (o callOpt) callOption()     {}

type config struct {
	engine          Engine
	strict          bool
	workers         int
	transport       clique.Transport
	sparseThreshold float64
	seed            uint64
	colourings      int
	delta           float64
	maxCycle        int
	roundLimit      int64
	ctx             context.Context
	fault           *clique.FaultPlan
	certifyProbes   int
	certifyRetries  int // -1 = unset (resolved per operation)
}

// defaultConfig is the base every session and one-shot call starts from.
func defaultConfig() config {
	return config{engine: Auto, sparseThreshold: ccmm.DefaultSparseThreshold, certifyRetries: -1}
}

func newConfig(opts []Option) config {
	c := defaultConfig()
	for _, o := range opts {
		o.apply(&c)
	}
	return c
}

// WithEngine forces a specific multiplication engine.
func WithEngine(e Engine) SessionOption { return sessionOpt(func(c *config) { c.engine = e }) }

// WithoutPadding fails instead of padding incompatible instance sizes.
func WithoutPadding() SessionOption { return sessionOpt(func(c *config) { c.strict = true }) }

// WithWorkers bounds the simulator's local-computation worker pool.
func WithWorkers(k int) SessionOption { return sessionOpt(func(c *config) { c.workers = k }) }

// WithSparseThreshold scales the density-aware planner's sparse-vs-dense
// comparison on Auto sessions: a product routes through the sparse tile
// engine when its ρ-bound round estimate is at most t times the resolved
// dense engine's estimate. The default is 1 (route sparse whenever the
// prediction says it wins); values below 1 demand a larger predicted win;
// 0 disables the per-product density census — and with it the sparse
// routing — entirely, restoring the purely static plan. The setting is
// armed on the session's network for every operation, so it also governs
// the products graph algorithms (CountTriangles, Girth, APSP, …) resolve
// internally. Each directly-routed operation's decision is reported in
// Stats.Routing.
func WithSparseThreshold(t float64) SessionOption {
	return sessionOpt(func(c *config) { c.sparseThreshold = t })
}

// WithWireTransport forces the encoded data plane: every message is
// encoded into O(log n)-bit words, copied through link queues, and decoded
// at the receiver — the original simulator behaviour. By default sessions
// use the direct transport, which hands algebra-typed data end-to-end and
// charges the identical rounds and words analytically (see DESIGN.md
// "Accounting plane vs data plane"); the reported Stats are bit-identical
// either way, only the wall-clock differs.
func WithWireTransport() SessionOption {
	return sessionOpt(func(c *config) { c.transport = clique.TransportWire })
}

// WithTransportVerification runs every engine product on both transports
// and fails the operation if the results or the charged
// rounds/words/flushes/phases differ in any way — the executable proof
// that the direct plane's analytic accounting is faithful. Roughly twice
// the work of WithWireTransport; meant for tests and debugging.
func WithTransportVerification() SessionOption {
	return sessionOpt(func(c *config) { c.transport = clique.TransportVerify })
}

// WithSeed seeds all randomised components (colour-coding, witness
// sampling); runs are reproducible for a fixed seed.
func WithSeed(seed uint64) CallOption { return callOpt(func(c *config) { c.seed = seed }) }

// WithColourings caps the number of colour-coding trials for cycle
// detection and girth (default: the paper's ⌈e^k ln n⌉).
func WithColourings(k int) CallOption { return callOpt(func(c *config) { c.colourings = k }) }

// WithDelta sets the per-product rounding parameter of approximate APSP.
func WithDelta(delta float64) CallOption { return callOpt(func(c *config) { c.delta = delta }) }

// WithMaxCycleLen sets ℓ for the girth algorithm's dense branch.
func WithMaxCycleLen(l int) CallOption { return callOpt(func(c *config) { c.maxCycle = l }) }

// WithRoundLimit aborts the simulation once the algorithm has consumed
// more than limit rounds; the entry point then returns a
// *clique.RoundLimitError. Useful for bounding simulation cost and for
// regression-testing round budgets. On a session the limit applies to the
// single operation it is passed to.
func WithRoundLimit(limit int64) CallOption {
	return callOpt(func(c *config) { c.roundLimit = limit })
}

// WithContext attaches a cancellation context to the operation: once ctx is
// cancelled, the simulation aborts at the next synchronous-round boundary
// and the entry point returns an error satisfying
// errors.Is(err, ctx.Err()). A nil ctx is ignored.
func WithContext(ctx context.Context) CallOption {
	return callOpt(func(c *config) { c.ctx = ctx })
}

// abortError reports whether a recovered panic value is one of the
// simulator's controlled aborts — round limit, cancellation, or injected
// fault.
func abortError(r any) (error, bool) { return clique.AsAbort(r) }

// sizeClass describes an algorithm's clique-size requirement.
type sizeClass int

const (
	anySize  sizeClass = iota // every engine runs unpadded (semiring products)
	ringSize                  // the bilinear engine wants a scheme-compatible size
)

// paddedSize returns the clique size to simulate for an instance of size n.
// Semiring products (anySize) never pad: the 3D algorithm's cube layout
// handles arbitrary n. Ring products pad only for the bilinear engine,
// whose two-level grid needs a scheme-compatible perfect square; under
// EngineAuto the smaller of the scheme padding and the cube padding wins
// (on a cube the 3D engine runs with no multiplexing overhead).
func (c config) paddedSize(n int, class sizeClass) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("algclique: empty instance: %w", ccmm.ErrSize)
	}
	want := n
	switch class {
	case anySize:
		// No constraint.
	case ringSize:
		switch c.engine {
		case Naive, Semiring3D, Sparse:
			// No constraint: the semiring engines run on any size (the
			// sparse engine rejects n < 8 at multiply time instead).
		case Fast:
			want = nextSchemeSize(n)
		default:
			// Auto: padding is a performance choice, never a requirement —
			// the engine resolution falls back to the 3D (or naive)
			// algorithm, which runs any size unpadded. Strict runs stay at
			// n; otherwise the smaller compatible padding wins.
			if c.strict {
				break
			}
			f, cu := nextSchemeSize(n), nextCube(n)
			if cu < f {
				want = cu
			} else {
				want = f
			}
		}
	}
	if c.strict && want != n {
		return 0, fmt.Errorf("algclique: instance size %d needs padding to %d (engine %v); remove WithoutPadding or resize: %w",
			n, want, c.engine, ccmm.ErrSize)
	}
	return want, nil
}

func nextCube(n int) int {
	c := ccmm.CbrtCeil(n)
	return c * c * c
}

func nextSchemeSize(n int) int {
	for m := n; ; m++ {
		if _, err := bilinear.Pick(m); err == nil {
			return m
		}
	}
}
