package algclique

import (
	"errors"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
)

// mustMatMulClean computes the fault-free reference product on a throwaway
// session.
func mustMatMulClean(t *testing.T, a, b Mat) Mat {
	t.Helper()
	want, _, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFaultInjectionCertifiedRecovery is the headline contract: under a
// seeded corruption storm with certification armed, MatMul either returns
// the bit-correct product (certified, possibly after retries) or a typed
// error — across many seeds, never a silently wrong answer.
func TestFaultInjectionCertifiedRecovery(t *testing.T) {
	n := 10
	a, b := randMatT(1, n), randMatT(2, n)
	want := mustMatMulClean(t, a, b)
	s, err := NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	recovered, failed := 0, 0
	for seed := uint64(1); seed <= 20; seed++ {
		got, st, err := s.MatMul(a, b,
			WithFaultInjection(FaultPlan{Seed: seed, CorruptProb: 0.01, DropProb: 0.005, MaxFaults: 8}),
			WithCertification(10))
		if err != nil {
			failed++
			var fe *FaultError
			var ce *CertificationError
			if !errors.As(err, &fe) && !errors.As(err, &ce) {
				t.Fatalf("seed %d: untyped failure %v (%T)", seed, err, err)
			}
			continue
		}
		if !st.Certified {
			t.Fatalf("seed %d: success without certification", seed)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: certified product is wrong", seed)
		}
		if st.Faults.Fired() > 0 && st.Attempts > 1 {
			recovered++
		}
	}
	if recovered == 0 {
		t.Error("no seed exercised a certified retry; lower MaxFaults or adjust probabilities")
	}
	t.Logf("recovered=%d failed-typed=%d", recovered, failed)
}

// TestFaultsWithoutCertificationTaintResult pins the taint rule: a product
// that completes while data faults fired, with no certification to vouch
// for it, returns *FaultError rather than a possibly-wrong matrix.
func TestFaultsWithoutCertificationTaintResult(t *testing.T) {
	n := 9
	a, b := randMatT(3, n), randMatT(4, n)
	s, err := NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	_, st, err := s.MatMul(a, b,
		WithFaultInjection(FaultPlan{Seed: 7, CorruptProb: 1, MaxFaults: 1}))
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v (%T), want *FaultError", err, err)
	}
	if fe.Kind != FaultDisrupt && fe.Kind != FaultCorrupt {
		t.Errorf("unexpected kind %v", fe.Kind)
	}
	if st.Faults.Corrupted == 0 {
		t.Errorf("ledger recorded no corruption: %+v", st.Faults)
	}
	if st.Attempts != 1 {
		t.Errorf("uncertified fault should not retry, got %d attempts", st.Attempts)
	}
}

// TestStraggleOnlyFaultsDoNotTaint: straggles stretch rounds but cannot
// corrupt data, so the result stays trustworthy without certification.
func TestStraggleOnlyFaultsDoNotTaint(t *testing.T) {
	n := 9
	a, b := randMatT(5, n), randMatT(6, n)
	want := mustMatMulClean(t, a, b)
	s, err := NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	_, clean, err := s.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := s.MatMul(a, b,
		WithFaultInjection(FaultPlan{Seed: 11, StraggleProb: 1, StraggleSkew: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("straggled product differs from clean product")
	}
	if st.Faults.Straggles == 0 || st.Faults.SkewRounds == 0 {
		t.Fatalf("no straggles ledgered: %+v", st.Faults)
	}
	if st.Rounds != clean.Rounds+st.Faults.SkewRounds {
		t.Errorf("rounds %d != clean %d + skew %d", st.Rounds, clean.Rounds, st.Faults.SkewRounds)
	}
}

// TestCrashSurfacesTypedAndIsNotRetried: a fail-stopped node is permanent
// on the network, so even a generous retry budget must not spin on it.
func TestCrashSurfacesTypedAndIsNotRetried(t *testing.T) {
	n := 9
	a, b := randMatT(8, n), randMatT(9, n)
	s, err := NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	_, st, err := s.MatMul(a, b,
		WithFaultInjection(FaultPlan{Seed: 1, CrashAtRound: 1, CrashNode: 2}),
		WithCertification(4), WithCertificationRetries(5))
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v (%T), want *FaultError", err, err)
	}
	if fe.Kind != FaultCrash || fe.Node != 2 {
		t.Errorf("got kind=%v node=%d, want crash of node 2", fe.Kind, fe.Node)
	}
	if st.Attempts != 1 {
		t.Errorf("crash retried: %d attempts", st.Attempts)
	}
	if st.Faults.Crashes != 1 {
		t.Errorf("ledger: %+v", st.Faults)
	}

	// The session itself stays healthy: the injector is disarmed after the
	// operation, so the next call runs clean.
	if _, _, err := s.MatMul(a, b); err != nil {
		t.Fatalf("session poisoned after crash op: %v", err)
	}
}

// TestTransportVerificationFlagsCorruptedDirectPlane is the satellite
// regression test: WithTransportVerification dual-runs every product, and
// a corrupted direct-plane payload must surface as ErrTransportDiverged
// (the wire shadow is un-faulted, so the planes cannot agree).
func TestTransportVerificationFlagsCorruptedDirectPlane(t *testing.T) {
	n := 10
	a, b := randMatT(12, n), randMatT(13, n)
	s, err := NewClique(n, WithTransportVerification())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	_, _, err = s.MatMul(a, b,
		WithFaultInjection(FaultPlan{Seed: 5, CorruptProb: 1}))
	if err == nil {
		t.Fatal("corrupted direct plane passed transport verification")
	}
	if !errors.Is(err, ccmm.ErrTransportDiverged) {
		t.Fatalf("err = %v, want ErrTransportDiverged", err)
	}
}

// TestFaultInjectionRejectedOnBroadcast: the fault plane hooks the unicast
// simulator's flush path; broadcast-model operations must refuse a plan
// rather than silently ignore it.
func TestFaultInjectionRejectedOnBroadcast(t *testing.T) {
	n := 9
	a, b := randMatT(14, n), randMatT(15, n)
	s, err := NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, _, err = s.MatMulBroadcast(a, b,
		WithFaultInjection(FaultPlan{Seed: 1, DropProb: 0.5}))
	if err == nil {
		t.Fatal("broadcast op accepted a fault plan")
	}
}

// TestCertificationOnCleanRun: certification on an un-faulted session
// accepts the product, marks it certified, and charges its probes to the
// operation's ledger.
func TestCertificationOnCleanRun(t *testing.T) {
	n := 10
	a, b := randMatT(16, n), randMatT(17, n)
	want := mustMatMulClean(t, a, b)
	s, err := NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	_, plain, err := s.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := s.MatMul(a, b, WithCertification(6))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("certified product differs")
	}
	if !st.Certified || st.Attempts != 1 {
		t.Errorf("certified=%v attempts=%d, want true/1", st.Certified, st.Attempts)
	}
	if st.Rounds <= plain.Rounds {
		t.Errorf("certification charged no rounds: %d vs %d", st.Rounds, plain.Rounds)
	}
}

// TestCertifiedDistanceAndBoolProducts covers the semiring (spot-check)
// certification paths end to end.
func TestCertifiedDistanceAndBoolProducts(t *testing.T) {
	n := 9
	a, b := randMatT(18, n), randMatT(19, n)
	bool01 := func(m Mat) Mat {
		out := make(Mat, len(m))
		for i, row := range m {
			out[i] = make([]int64, len(row))
			for j, v := range row {
				if v > 0 {
					out[i][j] = 1
				}
			}
		}
		return out
	}
	ba, bb := bool01(a), bool01(b)

	s, err := NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, st, err := s.DistanceProduct(a, b, WithCertification(n)); err != nil || !st.Certified {
		t.Fatalf("distance product: err=%v certified=%v", err, st.Certified)
	}
	if _, st, err := s.MatMulBool(ba, bb, WithCertification(n)); err != nil || !st.Certified {
		t.Fatalf("bool product: err=%v certified=%v", err, st.Certified)
	}
}

// TestBatchPerItemFaultPlans: fault plans are per-item call options — a
// faulted item fails typed while its batch siblings run clean, and the
// injector never leaks into the next item.
func TestBatchPerItemFaultPlans(t *testing.T) {
	n := 9
	a, b := randMatT(20, n), randMatT(21, n)
	want := mustMatMulClean(t, a, b)
	s, err := NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	items := []BatchItem{
		{A: a, B: b},
		{A: a, B: b, Opts: []CallOption{
			WithFaultInjection(FaultPlan{Seed: 2, CorruptProb: 1, MaxFaults: 1})}},
		{A: a, B: b},
	}
	prods, stats, err := s.MatMulBatch(items)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v (%T), want *FaultError from item 1", err, err)
	}
	if len(prods) != 1 {
		t.Fatalf("%d results before the failing item, want 1", len(prods))
	}
	if !reflect.DeepEqual(prods[0], want) {
		t.Fatal("clean item 0 computed a wrong product")
	}
	if stats[0].Faults.Fired() != 0 {
		t.Errorf("clean item ledgered faults: %+v", stats[0].Faults)
	}

	// Batch entry points recover per item too: with certification the
	// faulted item retries inside the batch.
	items[1].Opts = append(items[1].Opts, WithCertification(8), WithCertificationRetries(6))
	prods, stats, err = s.MatMulBatch(items)
	if err == nil {
		if len(prods) != 3 {
			t.Fatalf("%d results, want 3", len(prods))
		}
		if !reflect.DeepEqual(prods[1], want) {
			t.Fatal("certified faulted item is wrong")
		}
		if !stats[1].Certified {
			t.Error("faulted item not marked certified")
		}
	} else if !errors.As(err, &fe) {
		var ce *CertificationError
		if !errors.As(err, &ce) {
			t.Fatalf("batch retry failed untyped: %v", err)
		}
	}
}

// TestFaultPlanDeterministicAcrossSessions: the same plan on the same
// operation fires the same faults — the replayability contract chaos
// campaigns depend on.
func TestFaultPlanDeterministicAcrossSessions(t *testing.T) {
	n := 10
	a, b := randMatT(22, n), randMatT(23, n)
	run := func() (Stats, error) {
		s, err := NewClique(n)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		_, st, err := s.MatMul(a, b,
			WithFaultInjection(FaultPlan{Seed: 99, CorruptProb: 0.02, DropProb: 0.01, MaxFaults: 4}),
			WithCertification(8))
		return st, err
	}
	st1, err1 := run()
	st2, err2 := run()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("outcomes differ: %v vs %v", err1, err2)
	}
	if st1.Faults != st2.Faults || st1.Attempts != st2.Attempts || st1.Rounds != st2.Rounds {
		t.Fatalf("replay diverged: %+v/%d/%d vs %+v/%d/%d",
			st1.Faults, st1.Attempts, st1.Rounds, st2.Faults, st2.Attempts, st2.Rounds)
	}
}

// TestRoundLimitStillTypedThroughFaultPath: the retry harness must not
// swallow or retry a round-budget abort.
func TestRoundLimitStillTypedThroughFaultPath(t *testing.T) {
	n := 27
	a, b := randMatT(24, n), randMatT(25, n)
	s, err := NewClique(n, WithEngine(Semiring3D))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, st, err := s.MatMul(a, b, WithRoundLimit(3),
		WithFaultInjection(FaultPlan{Seed: 1, CorruptProb: 0.01}),
		WithCertification(4))
	var lim *clique.RoundLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v (%T), want *RoundLimitError", err, err)
	}
	if st.Attempts != 1 {
		t.Errorf("round-limit abort retried: %d attempts", st.Attempts)
	}
}
