package algclique_test

import (
	"fmt"
	"testing"

	cc "github.com/algebraic-clique/algclique"
)

// Allocation-tracking benchmarks for the session hot path. Each benchmark
// runs repeated products on one session, so allocs/op measures the
// steady-state per-operation cost the scratch pools are meant to amortise
// away; CI watches these numbers through the ccbench matmul experiment.

// BenchmarkSessionDistanceProduct measures a repeated min-plus product on a
// reused session (the shape of every iterated-squaring APSP pipeline).
func BenchmarkSessionDistanceProduct(b *testing.B) {
	for _, n := range []int{27, 64, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := randSquare(n, 61)
			c := randSquare(n, 62)
			s, err := cc.NewClique(n)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.DistanceProduct(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionMatMul measures a repeated integer product on a reused
// session (fast bilinear engine at these sizes).
func BenchmarkSessionMatMul(b *testing.B) {
	for _, n := range []int{27, 64, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := randSquare(n, 63)
			c := randSquare(n, 64)
			s, err := cc.NewClique(n)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.MatMul(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionAPSP measures the full witness-carrying APSP pipeline —
// ⌈log n⌉ width-2 (value + witness) distance products per op — on a reused
// session.
func BenchmarkSessionAPSP(b *testing.B) {
	for _, n := range []int{27, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := cc.RandomConnectedWeighted(n, 0.2, 50, true, 65)
			s, err := cc.NewClique(n)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.APSP(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
