package algclique

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/matrix"
)

// MatMul multiplies two n×n integer matrices on the session's simulated
// congested clique (row v of each operand is node v's input) and returns
// the product with measured communication stats. The default engine is the
// fast bilinear algorithm — O(n^{1-2/log₂7}) ≈ O(n^{0.29}) rounds with the
// Strassen scheme (Theorem 1; the paper's O(n^{0.158}) uses the
// impracticable Le Gall scheme, see DESIGN.md).
func (s *Clique) MatMul(a, b Mat, opts ...CallOption) (Mat, Stats, error) {
	return s.product(matMulSpec, a, b, opts)
}

// MatMul is the one-shot form of Clique.MatMul: it simulates the product on
// a throwaway session.
func MatMul(a, b Mat, opts ...Option) (Mat, Stats, error) {
	n := len(a)
	s, err := oneShot(n, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.MatMul(a, b)
}

// DistanceProduct computes the min-plus (tropical) product
// P[u][v] = min_w A[u][w] + B[w][v] with Inf as "no entry" — the primitive
// behind all APSP algorithms. Runs unpadded on the semiring 3D engine for
// any instance size — O(n^{1/3}) rounds on the instance's own clique
// (tiny instances below 8 nodes use the naive engine); for bounded entries
// the ring-embedded fast product is used by the small-weight APSP entry
// points.
func (s *Clique) DistanceProduct(a, b Mat, opts ...CallOption) (Mat, Stats, error) {
	if s.cfg.engine == Fast {
		return nil, Stats{}, fmt.Errorf("algclique: min-plus is not a ring; use Auto, Semiring3D or Naive: %w", ccmm.ErrSize)
	}
	return s.product(distanceProductSpec, a, b, opts)
}

// DistanceProduct is the one-shot form of Clique.DistanceProduct.
func DistanceProduct(a, b Mat, opts ...Option) (Mat, Stats, error) {
	n := len(a)
	s, err := oneShot(n, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.DistanceProduct(a, b)
}

// MatMulBool computes the Boolean matrix product of 0/1 matrices
// (reachability composition), over the integers on the fast engine.
func (s *Clique) MatMulBool(a, b Mat, opts ...CallOption) (Mat, Stats, error) {
	return s.product(matMulBoolSpec, a, b, opts)
}

// product is the shared entry for the three matrix products: one
// per-operation harness around runProduct's retry/certification loop.
func (s *Clique) product(spec batchSpec, a, b Mat, opts []CallOption) (prod Mat, stats Stats, err error) {
	orig, err := squareSize(a, b)
	if err != nil {
		return nil, Stats{}, err
	}
	r, err := s.begin(spec.op, orig, spec.class, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer r.end(&stats, &err)
	prod, err = r.runProduct(r.cfg, spec, a, b)
	return
}

// MatMulBool is the one-shot form of Clique.MatMulBool.
func MatMulBool(a, b Mat, opts ...Option) (Mat, Stats, error) {
	n := len(a)
	s, err := oneShot(n, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.MatMulBool(a, b)
}

func squareSize(a, b Mat) (int, error) {
	n := len(a)
	if len(b) != n {
		return 0, fmt.Errorf("algclique: operand sizes %d and %d differ: %w", n, len(b), ccmm.ErrSize)
	}
	for i, row := range a {
		if len(row) != n {
			return 0, fmt.Errorf("algclique: left operand row %d has %d entries, want %d: %w", i, len(row), n, ccmm.ErrSize)
		}
	}
	for i, row := range b {
		if len(row) != n {
			return 0, fmt.Errorf("algclique: right operand row %d has %d entries, want %d: %w", i, len(row), n, ccmm.ErrSize)
		}
	}
	return n, nil
}

// padMatInto embeds rows into an existing n×n distributed matrix, filling
// all other entries with the algebra's zero (0 for rings, Inf for min-plus)
// so the padded product restricted to the original block is unchanged.
// Every entry is overwritten, so pooled buffers with stale contents are
// safe.
func padMatInto(dst *ccmm.RowMat[int64], rows Mat, zero int64) {
	for v, r := range dst.Rows {
		var src []int64
		if v < len(rows) {
			src = rows[v]
		}
		k := copy(r, src)
		for j := k; j < len(r); j++ {
			r[j] = zero
		}
	}
}

func denseOf(rows Mat) *matrix.Dense[int64] {
	return matrix.FromRows(rows)
}
