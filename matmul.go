package algclique

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/matrix"
)

// MatMul multiplies two n×n integer matrices on a simulated congested
// clique (row v of each operand is node v's input) and returns the product
// with measured communication stats. The default engine is the fast
// bilinear algorithm — O(n^{1-2/log₂7}) ≈ O(n^{0.29}) rounds with the
// Strassen scheme (Theorem 1; the paper's O(n^{0.158}) uses the
// impracticable Le Gall scheme, see DESIGN.md).
func MatMul(a, b [][]int64, opts ...Option) (prod [][]int64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	orig, err := squareSize(a, b)
	if err != nil {
		return nil, Stats{}, err
	}
	n, err := c.paddedSize(orig, ringSize)
	if err != nil {
		return nil, Stats{}, err
	}
	net := c.network(n)
	p, err := ccmm.MulInt(net, c.engine.internal(), padMat(a, n, 0), padMat(b, n, 0))
	if err != nil {
		return nil, statsOf(net, orig), err
	}
	return truncateRows(p, orig), statsOf(net, orig), nil
}

// DistanceProduct computes the min-plus (tropical) product
// P[u][v] = min_w A[u][w] + B[w][v] with Inf as "no entry" — the primitive
// behind all APSP algorithms. Runs unpadded on the semiring 3D engine for
// any instance size — O(n^{1/3}) rounds on the instance's own clique
// (tiny instances below 8 nodes use the naive engine); for bounded entries
// the ring-embedded fast product is used by the small-weight APSP entry
// points.
func DistanceProduct(a, b [][]int64, opts ...Option) (prod [][]int64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	orig, err := squareSize(a, b)
	if err != nil {
		return nil, Stats{}, err
	}
	n, err := c.paddedSize(orig, anySize)
	if err != nil {
		return nil, Stats{}, err
	}
	net := c.network(n)
	eng := c.engine.internal()
	if eng == ccmm.EngineFast {
		return nil, Stats{}, fmt.Errorf("algclique: min-plus is not a ring; use Auto, Semiring3D or Naive: %w", ccmm.ErrSize)
	}
	p, err := ccmm.MulMinPlus(net, eng, padMat(a, n, Inf), padMat(b, n, Inf))
	if err != nil {
		return nil, statsOf(net, orig), err
	}
	return truncateRows(p, orig), statsOf(net, orig), nil
}

// MatMulBool computes the Boolean matrix product of 0/1 matrices
// (reachability composition), over the integers on the fast engine.
func MatMulBool(a, b [][]int64, opts ...Option) (prod [][]int64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	orig, err := squareSize(a, b)
	if err != nil {
		return nil, Stats{}, err
	}
	n, err := c.paddedSize(orig, ringSize)
	if err != nil {
		return nil, Stats{}, err
	}
	net := c.network(n)
	p, err := ccmm.MulBool(net, c.engine.internal(), padMat(a, n, 0), padMat(b, n, 0))
	if err != nil {
		return nil, statsOf(net, orig), err
	}
	return truncateRows(p, orig), statsOf(net, orig), nil
}

func squareSize(a, b [][]int64) (int, error) {
	n := len(a)
	if len(b) != n {
		return 0, fmt.Errorf("algclique: operand sizes %d and %d differ: %w", n, len(b), ccmm.ErrSize)
	}
	for i, row := range a {
		if len(row) != n {
			return 0, fmt.Errorf("algclique: left operand row %d has %d entries, want %d: %w", i, len(row), n, ccmm.ErrSize)
		}
	}
	for i, row := range b {
		if len(row) != n {
			return 0, fmt.Errorf("algclique: right operand row %d has %d entries, want %d: %w", i, len(row), n, ccmm.ErrSize)
		}
	}
	return n, nil
}

// padMat embeds rows into an n×n distributed matrix, filling new entries
// with the algebra's zero (0 for rings, Inf for min-plus) so the padded
// product restricted to the original block is unchanged.
func padMat(rows [][]int64, n int, zero int64) *ccmm.RowMat[int64] {
	out := ccmm.NewRowMat[int64](n)
	for v := 0; v < n; v++ {
		dst := out.Rows[v]
		if zero != 0 {
			for j := range dst {
				dst[j] = zero
			}
		}
		if v < len(rows) {
			copy(dst, rows[v])
		}
	}
	return out
}

func denseOf(rows [][]int64) *matrix.Dense[int64] {
	return matrix.FromRows(rows)
}
