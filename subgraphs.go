package algclique

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/baseline"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/girth"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

// CountTriangles counts the graph's triangles (directed 3-cycles for
// directed graphs) via the trace formula and one distributed matrix
// product — O(n^ρ) rounds (Corollary 2).
func CountTriangles(g *Graph, opts ...Option) (count int64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return 0, Stats{}, err
	}
	net := c.network(n)
	count, err = subgraph.CountTriangles(net, c.engine.internal(), padGraph(g, n))
	return count, statsOf(net, g.N()), err
}

// CountFourCycles counts the graph's 4-cycles via the Alon–Yuster–Zwick
// trace formula — O(n^ρ) rounds (Corollary 2).
func CountFourCycles(g *Graph, opts ...Option) (count int64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return 0, Stats{}, err
	}
	net := c.network(n)
	count, err = subgraph.CountC4(net, c.engine.internal(), padGraph(g, n))
	return count, statsOf(net, g.N()), err
}

// CountFiveCycles counts the 5-cycles of an undirected graph via the
// k = 5 trace formula the paper points to in §3.1 (Alon–Yuster–Zwick):
// two distributed products — O(n^ρ) rounds.
func CountFiveCycles(g *Graph, opts ...Option) (count int64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return 0, Stats{}, err
	}
	net := c.network(n)
	count, err = subgraph.CountC5(net, c.engine.internal(), padGraph(g, n))
	return count, statsOf(net, g.N()), err
}

// CountSixCycles counts the 6-cycles of an undirected graph via the k = 6
// closed-walk census (ten image shapes with machine-enumerated walk
// constants; see internal/subgraph.CountC6): two distributed products —
// O(n^ρ) rounds.
func CountSixCycles(g *Graph, opts ...Option) (count int64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return 0, Stats{}, err
	}
	net := c.network(n)
	count, err = subgraph.CountC6(net, c.engine.internal(), padGraph(g, n))
	return count, statsOf(net, g.N()), err
}

// DetectFourCycle reports whether an undirected graph contains a 4-cycle
// in O(1) rounds (Theorem 4) — no matrix multiplication involved.
func DetectFourCycle(g *Graph, opts ...Option) (found bool, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), anySize)
	if err != nil {
		return false, Stats{}, err
	}
	net := c.network(n)
	found, err = subgraph.DetectC4(net, g)
	return found, statsOf(net, g.N()), err
}

// DetectCycle reports whether the graph contains a simple cycle of length
// exactly k, by randomised colour-coding — 2^{O(k)}·n^ρ·log n rounds
// (Theorem 3). There are no false positives; the detection probability per
// colouring is ≥ k!/k^k, amplified by the (configurable) trial count.
func DetectCycle(g *Graph, k int, opts ...Option) (found bool, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return false, Stats{}, err
	}
	net := c.network(n)
	found, _, err = subgraph.DetectKCycle(net, c.engine.internal(), padGraph(g, n), k,
		subgraph.KCycleOpts{Colourings: c.colourings, Seed: c.seed})
	return found, statsOf(net, g.N()), err
}

// Girth computes the length of the graph's shortest cycle — Õ(n^ρ) rounds
// (Theorem 5 for undirected graphs, Corollary 16 for directed ones).
// ok = false reports an acyclic graph.
func Girth(g *Graph, opts ...Option) (value int, ok bool, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return 0, false, Stats{}, err
	}
	net := c.network(n)
	padded := padGraph(g, n)
	if g.Directed() {
		value, ok, err = girth.Directed(net, c.engine.internal(), padded)
	} else {
		value, ok, err = girth.Undirected(net, c.engine.internal(), padded, girth.Opts{
			MaxCycleLen: c.maxCycle,
			KCycle:      subgraph.KCycleOpts{Colourings: c.colourings, Seed: c.seed},
		})
	}
	return value, ok, statsOf(net, g.N()), err
}

// SquareAdjacencySparse computes every row of A² (2-walk counts) in O(1)
// rounds for undirected graphs with Σ deg² < 2n² — the sparse
// matrix-multiplication reading of the Theorem 4 machinery (§1.2 of the
// paper). Returns subgraph.ErrTooDense (wrapped) when the degree condition
// fails; use MatMul on the adjacency matrix then.
func SquareAdjacencySparse(g *Graph, opts ...Option) (sq [][]int64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), anySize)
	if err != nil {
		return nil, Stats{}, err
	}
	if n < 8 {
		n = 8 // the Lemma 12 packing bound needs a few extra idle nodes
		if c.strict {
			return nil, Stats{}, fmt.Errorf("algclique: sparse square needs n ≥ 8: %w", ccmm.ErrSize)
		}
	}
	net := c.network(n)
	rows, err := subgraph.SparseSquare(net, padGraph(g, n))
	if err != nil {
		return nil, statsOf(net, g.N()), err
	}
	return truncateRows(rows, g.N()), statsOf(net, g.N()), nil
}

// CountTrianglesDolev counts triangles with the deterministic
// O(n^{1/3})-round combinatorial algorithm of Dolev, Lenzen and Peled
// (DISC 2012) — the prior-work baseline of Table 1.
func CountTrianglesDolev(g *Graph, opts ...Option) (count int64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), anySize)
	if err != nil {
		return 0, Stats{}, err
	}
	net := c.network(n)
	count, err = baseline.DolevTriangles(net, g)
	return count, statsOf(net, g.N()), err
}
