package algclique

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/baseline"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/girth"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

// CountTriangles counts the graph's triangles (directed 3-cycles for
// directed graphs) via the trace formula and one distributed matrix
// product — O(n^ρ) rounds (Corollary 2). On an Auto session the A²
// product is density-aware: sparse adjacency matrices route through the
// sparse tile engine via the per-product census (see Stats.Routing on
// MatMul for the mechanism).
func (s *Clique) CountTriangles(g *Graph, opts ...CallOption) (count int64, stats Stats, err error) {
	r, err := s.begin("CountTriangles", g.N(), ringSize, opts)
	if err != nil {
		return 0, Stats{}, err
	}
	defer r.end(&stats, &err)
	count, err = subgraph.CountTriangles(r.net, r.engine(), padGraph(g, r.n))
	return
}

// CountTriangles is the one-shot form of Clique.CountTriangles.
func CountTriangles(g *Graph, opts ...Option) (int64, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return 0, Stats{}, err
	}
	defer s.Close()
	return s.CountTriangles(g)
}

// CountFourCycles counts the graph's 4-cycles via the Alon–Yuster–Zwick
// trace formula — O(n^ρ) rounds (Corollary 2).
func (s *Clique) CountFourCycles(g *Graph, opts ...CallOption) (count int64, stats Stats, err error) {
	r, err := s.begin("CountFourCycles", g.N(), ringSize, opts)
	if err != nil {
		return 0, Stats{}, err
	}
	defer r.end(&stats, &err)
	count, err = subgraph.CountC4(r.net, r.engine(), padGraph(g, r.n))
	return
}

// CountFourCycles is the one-shot form of Clique.CountFourCycles.
func CountFourCycles(g *Graph, opts ...Option) (int64, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return 0, Stats{}, err
	}
	defer s.Close()
	return s.CountFourCycles(g)
}

// CountFiveCycles counts the 5-cycles of an undirected graph via the
// k = 5 trace formula the paper points to in §3.1 (Alon–Yuster–Zwick):
// two distributed products — O(n^ρ) rounds.
func (s *Clique) CountFiveCycles(g *Graph, opts ...CallOption) (count int64, stats Stats, err error) {
	r, err := s.begin("CountFiveCycles", g.N(), ringSize, opts)
	if err != nil {
		return 0, Stats{}, err
	}
	defer r.end(&stats, &err)
	count, err = subgraph.CountC5(r.net, r.engine(), padGraph(g, r.n))
	return
}

// CountFiveCycles is the one-shot form of Clique.CountFiveCycles.
func CountFiveCycles(g *Graph, opts ...Option) (int64, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return 0, Stats{}, err
	}
	defer s.Close()
	return s.CountFiveCycles(g)
}

// CountSixCycles counts the 6-cycles of an undirected graph via the k = 6
// closed-walk census (ten image shapes with machine-enumerated walk
// constants; see internal/subgraph.CountC6): two distributed products —
// O(n^ρ) rounds.
func (s *Clique) CountSixCycles(g *Graph, opts ...CallOption) (count int64, stats Stats, err error) {
	r, err := s.begin("CountSixCycles", g.N(), ringSize, opts)
	if err != nil {
		return 0, Stats{}, err
	}
	defer r.end(&stats, &err)
	count, err = subgraph.CountC6(r.net, r.engine(), padGraph(g, r.n))
	return
}

// CountSixCycles is the one-shot form of Clique.CountSixCycles.
func CountSixCycles(g *Graph, opts ...Option) (int64, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return 0, Stats{}, err
	}
	defer s.Close()
	return s.CountSixCycles(g)
}

// DetectFourCycle reports whether an undirected graph contains a 4-cycle
// in O(1) rounds (Theorem 4) — no matrix multiplication involved. Its
// phase-1 degree census already routes per input: very dense inputs
// certify a cycle by pigeonhole, everything else rides the Lemma 12
// tiles (the same tiles the Sparse matmul engine generalises).
func (s *Clique) DetectFourCycle(g *Graph, opts ...CallOption) (found bool, stats Stats, err error) {
	r, err := s.begin("DetectFourCycle", g.N(), anySize, opts)
	if err != nil {
		return false, Stats{}, err
	}
	defer r.end(&stats, &err)
	found, err = subgraph.DetectC4(r.net, g)
	return
}

// DetectFourCycle is the one-shot form of Clique.DetectFourCycle.
func DetectFourCycle(g *Graph, opts ...Option) (bool, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return false, Stats{}, err
	}
	defer s.Close()
	return s.DetectFourCycle(g)
}

// DetectCycle reports whether the graph contains a simple cycle of length
// exactly k, by randomised colour-coding — 2^{O(k)}·n^ρ·log n rounds
// (Theorem 3). There are no false positives; the detection probability per
// colouring is ≥ k!/k^k, amplified by the (configurable) trial count.
func (s *Clique) DetectCycle(g *Graph, k int, opts ...CallOption) (found bool, stats Stats, err error) {
	r, err := s.begin("DetectCycle", g.N(), ringSize, opts)
	if err != nil {
		return false, Stats{}, err
	}
	defer r.end(&stats, &err)
	found, _, err = subgraph.DetectKCycle(r.net, r.engine(), padGraph(g, r.n), k,
		subgraph.KCycleOpts{Colourings: r.cfg.colourings, Seed: r.cfg.seed})
	return
}

// DetectCycle is the one-shot form of Clique.DetectCycle.
func DetectCycle(g *Graph, k int, opts ...Option) (bool, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return false, Stats{}, err
	}
	defer s.Close()
	return s.DetectCycle(g, k)
}

// Girth computes the length of the graph's shortest cycle — Õ(n^ρ) rounds
// (Theorem 5 for undirected graphs, Corollary 16 for directed ones).
// ok = false reports an acyclic graph. The undirected algorithm already
// routes on a degree census (its sparse branch gathers the graph
// directly); on an Auto session its inner Boolean products additionally
// run the density census, which keeps them on the bit-packed dense
// transport unless the operands are sparse enough to beat it.
func (s *Clique) Girth(g *Graph, opts ...CallOption) (value int, ok bool, stats Stats, err error) {
	r, err := s.begin("Girth", g.N(), ringSize, opts)
	if err != nil {
		return 0, false, Stats{}, err
	}
	defer r.end(&stats, &err)
	padded := padGraph(g, r.n)
	if g.Directed() {
		value, ok, err = girth.Directed(r.net, r.engine(), padded)
	} else {
		value, ok, err = girth.Undirected(r.net, r.engine(), padded, girth.Opts{
			MaxCycleLen: r.cfg.maxCycle,
			KCycle:      subgraph.KCycleOpts{Colourings: r.cfg.colourings, Seed: r.cfg.seed},
		})
	}
	return
}

// Girth is the one-shot form of Clique.Girth.
func Girth(g *Graph, opts ...Option) (int, bool, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return 0, false, Stats{}, err
	}
	defer s.Close()
	return s.Girth(g)
}

// Sentinel errors of the Sparse engine's restrictions as they surface
// through the session layer (SquareAdjacencySparse and any product forced
// onto WithEngine(Sparse)); all are testable with errors.Is.
var (
	// ErrSparseTooDense: the operands fail the engine's Σ ca·rb < 2n²
	// density bound (for an undirected adjacency square, the Σ deg(y)² <
	// 2n² sparseness condition). It is the engine-level sentinel itself,
	// so it matches both a forced Sparse product's error and
	// SquareAdjacencySparse's (which wraps it via subgraph.ErrTooDense).
	ErrSparseTooDense = ccmm.ErrTooDense
	// ErrSparseTooSmall: the clique is below the n ≥ 8 packing bound and
	// the session is strict (WithoutPadding), so it cannot be padded up.
	ErrSparseTooSmall = subgraph.ErrTooSmall
	// ErrSparseDirected: the graph is directed.
	ErrSparseDirected = subgraph.ErrDirected
)

// SquareAdjacencySparse computes every row of A² (2-walk counts) in O(1)
// rounds for undirected graphs with Σ deg² < 2n² — the sparse
// matrix-multiplication reading of the Theorem 4 machinery (§1.2 of the
// paper), executed as a thin wrapper over the Sparse engine's integer
// product (the engine's density census specialises exactly to the degree
// condition on an undirected adjacency matrix).
//
// Restrictions surface as wrapped sentinels testable with errors.Is:
// ErrSparseTooDense when the degree condition fails (fall back to MatMul
// on the adjacency matrix — or just use Auto, whose census does exactly
// that routing per product), ErrSparseDirected for directed graphs, and
// ErrSparseTooSmall for n < 8 under WithoutPadding (without it, instances
// below 8 are padded with isolated nodes, which leaves A² unchanged).
func (s *Clique) SquareAdjacencySparse(g *Graph, opts ...CallOption) (sq Mat, stats Stats, err error) {
	n := s.nAny
	if n < 8 {
		// The Lemma 12 packing bound needs a few extra idle nodes.
		if s.cfg.strict {
			return nil, Stats{}, fmt.Errorf("algclique: instance size %d cannot pad to the packing bound under WithoutPadding: %w", n, subgraph.ErrTooSmall)
		}
		n = 8
	}
	r, err := s.beginAt("SquareAdjacencySparse", g.N(), n, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer r.end(&stats, &err)
	rows, serr := subgraph.SparseSquareScratch(r.net, r.sc, padGraph(g, r.n))
	if serr != nil {
		err = serr
		return
	}
	// The sparse engine is forced on this path, so — like any product
	// under WithEngine(Sparse) — there is no planner decision to report:
	// Stats.Routing stays empty and the engine's own degree census is
	// visible in the mmsparse/census phase.
	sq = truncateRows(rows, r.orig)
	r.recycle(rows)
	return
}

// SquareAdjacencySparse is the one-shot form of Clique.SquareAdjacencySparse.
func SquareAdjacencySparse(g *Graph, opts ...Option) (Mat, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.SquareAdjacencySparse(g)
}

// CountTrianglesDolev counts triangles with the deterministic
// O(n^{1/3})-round combinatorial algorithm of Dolev, Lenzen and Peled
// (DISC 2012) — the prior-work baseline of Table 1.
func (s *Clique) CountTrianglesDolev(g *Graph, opts ...CallOption) (count int64, stats Stats, err error) {
	r, err := s.begin("CountTrianglesDolev", g.N(), anySize, opts)
	if err != nil {
		return 0, Stats{}, err
	}
	defer r.end(&stats, &err)
	count, err = baseline.DolevTriangles(r.net, g)
	return
}

// CountTrianglesDolev is the one-shot form of Clique.CountTrianglesDolev.
func CountTrianglesDolev(g *Graph, opts ...Option) (int64, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return 0, Stats{}, err
	}
	defer s.Close()
	return s.CountTrianglesDolev(g)
}
