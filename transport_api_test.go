package algclique

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

func randMatT(seed uint64, n int) Mat {
	rng := rand.New(rand.NewPCG(seed, 0))
	m := make(Mat, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			m[i][j] = rng.Int64N(100) - 50
		}
	}
	return m
}

// TestSessionTransportsAgree runs the same products on a default (direct)
// session, a WithWireTransport session, and a WithTransportVerification
// session: results and reported Stats must be identical across all three.
func TestSessionTransportsAgree(t *testing.T) {
	for _, n := range []int{10, 27} {
		a, b := randMatT(1, n), randMatT(2, n)
		type outcome struct {
			mm, dp Mat
			mmSt   Stats
			dpSt   Stats
		}
		run := func(opts ...SessionOption) outcome {
			s, err := NewClique(n, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			mm, mmSt, err := s.MatMul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			dp, dpSt, err := s.DistanceProduct(a, b)
			if err != nil {
				t.Fatal(err)
			}
			return outcome{mm: mm, dp: dp, mmSt: mmSt, dpSt: dpSt}
		}
		direct := run()
		wire := run(WithWireTransport())
		verify := run(WithTransportVerification())
		if !reflect.DeepEqual(direct, wire) {
			t.Fatalf("n=%d: direct and wire sessions disagree", n)
		}
		if !reflect.DeepEqual(direct, verify) {
			t.Fatalf("n=%d: direct and verification sessions disagree", n)
		}
	}
}

// TestSessionTrim checks Trim keeps the session usable and correct.
func TestSessionTrim(t *testing.T) {
	const n = 27
	a, b := randMatT(3, n), randMatT(4, n)
	s, err := NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, _, err := s.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s.Trim()
	again, _, err := s.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("product changed after Trim")
	}
}

// TestSessionAPSPTransportsAgree covers a full application pipeline
// (iterated products, witnesses, broadcasts) across both transports.
func TestSessionAPSPTransportsAgree(t *testing.T) {
	g := NewGraph(13, false)
	rng := rand.New(rand.NewPCG(9, 9))
	for u := 0; u < 13; u++ {
		for v := u + 1; v < 13; v++ {
			if rng.IntN(3) == 0 {
				g.AddEdge(u, v)
			}
		}
	}
	run := func(opts ...SessionOption) (Mat, Stats) {
		s, err := NewClique(13, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		res, st, err := s.APSPUnweightedWithRouting(g, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		return res.Dist, st
	}
	dDist, dSt := run()
	wDist, wSt := run(WithWireTransport())
	if !reflect.DeepEqual(dDist, wDist) {
		t.Fatalf("APSP distances differ between transports")
	}
	if !reflect.DeepEqual(dSt, wSt) {
		t.Fatalf("APSP stats differ between transports:\ndirect: %+v\nwire:   %+v", dSt, wSt)
	}
}
