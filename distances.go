package algclique

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/baseline"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/distance"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// APSPResult holds all-pairs shortest-path output. Dist[u][v] is the
// distance (Inf when unreachable); Next, when non-nil, is the routing
// table: Next[u][v] is the first hop after u on a shortest u→v path
// (NoHop for unreachable pairs, u itself on the diagonal).
type APSPResult struct {
	Dist [][]int64
	Next [][]int64
}

// Path reconstructs a shortest u→v path from the routing table, or nil if
// v is unreachable or no routing table was computed.
func (r *APSPResult) Path(u, v int) []int {
	if r.Next == nil || u < 0 || v < 0 || u >= len(r.Next) || v >= len(r.Next) {
		return nil
	}
	if ring.IsInf(r.Dist[u][v]) {
		return nil
	}
	path := []int{u}
	cur := u
	for cur != v {
		hop := r.Next[cur][v]
		if hop < 0 || int(hop) >= len(r.Next) || len(path) > len(r.Next) {
			return nil
		}
		cur = int(hop)
		path = append(path, cur)
	}
	return path
}

func truncateResult(res *distance.Result, n int) *APSPResult {
	out := &APSPResult{Dist: truncateRows(res.Dist, n)}
	if res.Next != nil {
		out.Next = truncateRows(res.Next, n)
		// Padded nodes cannot occur on finite paths, so truncation is safe.
	}
	return out
}

func truncateRows(m *ccmm.RowMat[int64], n int) [][]int64 {
	out := make([][]int64, n)
	for v := 0; v < n; v++ {
		row := make([]int64, n)
		copy(row, m.Rows[v][:n])
		out[v] = row
	}
	return out
}

// APSP computes exact all-pairs shortest paths and routing tables for
// weighted directed graphs (integer weights, negative allowed, no negative
// cycles) by min-plus iterated squaring on the 3D algorithm —
// O(n^{1/3} log n) rounds (Corollary 6). The 3D algorithm runs on any
// clique size, so the instance is simulated unpadded.
func APSP(g *Weighted, opts ...Option) (res *APSPResult, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), anySize)
	if err != nil {
		return nil, Stats{}, err
	}
	net := c.network(n)
	dres, err := distance.APSPSemiring(net, padWeighted(g, n))
	if err != nil {
		return nil, statsOf(net, g.N()), err
	}
	return truncateResult(dres, g.N()), statsOf(net, g.N()), nil
}

// APSPUnweighted computes exact all-pairs shortest paths of an unweighted
// undirected graph by Seidel's algorithm — Õ(n^ρ) rounds (Corollary 7).
// No routing table is produced; see APSPUnweightedWithRouting.
func APSPUnweighted(g *Graph, opts ...Option) (res *APSPResult, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return nil, Stats{}, err
	}
	net := c.network(n)
	d, err := distance.APSPSeidel(net, c.engine.internal(), padGraph(g, n))
	if err != nil {
		return nil, statsOf(net, g.N()), err
	}
	return &APSPResult{Dist: truncateRows(d, g.N())}, statsOf(net, g.N()), nil
}

// APSPUnweightedWithRouting runs Seidel's algorithm and then recovers a
// routing table with the witness machinery of §3.4 (Lemma 21).
func APSPUnweightedWithRouting(g *Graph, opts ...Option) (res *APSPResult, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return nil, Stats{}, err
	}
	net := c.network(n)
	padded := padGraph(g, n)
	d, err := distance.APSPSeidel(net, c.engine.internal(), padded)
	if err != nil {
		return nil, statsOf(net, g.N()), err
	}
	w := ccmm.NewRowMat[int64](n)
	for u := 0; u < n; u++ {
		row := w.Rows[u]
		for v := 0; v < n; v++ {
			switch {
			case u == v:
				row[v] = 0
			case padded.HasEdge(u, v):
				row[v] = 1
			default:
				row[v] = ring.Inf
			}
		}
	}
	oracle := distance.MinPlusOracle(net, c.engine.internal())
	next, err := distance.RoutingFromDistances(net, oracle, w, d, distance.WitnessOpts{Seed: c.seed})
	if err != nil {
		return nil, statsOf(net, g.N()), err
	}
	out := &APSPResult{Dist: truncateRows(d, g.N()), Next: truncateRows(next, g.N())}
	return out, statsOf(net, g.N()), nil
}

// APSPSmallWeights computes exact all-pairs shortest paths for directed
// graphs with positive integer weights and weighted diameter U in
// Õ(U·n^ρ) rounds (Corollary 8, via the Lemma 18 ring embedding).
func APSPSmallWeights(g *Weighted, opts ...Option) (res *APSPResult, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return nil, Stats{}, err
	}
	net := c.network(n)
	d, err := distance.APSPSmallWeights(net, c.engine.internal(), padWeighted(g, n))
	if err != nil {
		return nil, statsOf(net, g.N()), err
	}
	return &APSPResult{Dist: truncateRows(d, g.N())}, statsOf(net, g.N()), nil
}

// APSPApprox computes (1+ε)-approximate all-pairs shortest paths for
// directed graphs with non-negative integer weights in O(n^{ρ+o(1)})
// rounds (Theorem 9). The returned stretch is the proven bound
// (1+δ)^⌈log₂ n⌉ for the δ in effect (see WithDelta); with the default δ
// the stretch is 1+o(1).
func APSPApprox(g *Weighted, opts ...Option) (res *APSPResult, stretch float64, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	n, err := c.paddedSize(g.N(), ringSize)
	if err != nil {
		return nil, 0, Stats{}, err
	}
	net := c.network(n)
	d, stretch, err := distance.APSPApprox(net, c.engine.internal(), padWeighted(g, n),
		distance.ApproxOpts{Delta: c.delta})
	if err != nil {
		return nil, 0, statsOf(net, g.N()), err
	}
	return &APSPResult{Dist: truncateRows(d, g.N())}, stretch, statsOf(net, g.N()), nil
}

// APSPNaive is the Θ(n)-round learn-everything baseline (per-node
// Dijkstra); non-negative weights only.
func APSPNaive(g *Weighted, opts ...Option) (res *APSPResult, stats Stats, err error) {
	defer captureRoundLimit(&err)
	c := newConfig(opts)
	if _, err := c.paddedSize(g.N(), anySize); err != nil {
		return nil, Stats{}, err
	}
	net := c.network(g.N())
	d, err := baseline.NaiveAPSP(net, g)
	if err != nil {
		return nil, statsOf(net, g.N()), err
	}
	return &APSPResult{Dist: truncateRows(d, g.N())}, statsOf(net, g.N()), nil
}

// ValidateRouting checks a distance matrix and routing table against the
// graph: every recorded path must exist and realise its distance. Intended
// for tests and examples.
func ValidateRouting(g *Weighted, res *APSPResult) error {
	if res.Next == nil {
		return fmt.Errorf("algclique: no routing table to validate")
	}
	return distance.ValidateRouting(g, denseOf(res.Dist), denseOf(res.Next))
}
