package algclique

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/baseline"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/distance"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// APSPResult holds all-pairs shortest-path output. Dist[u][v] is the
// distance (Inf when unreachable); Next, when non-nil, is the routing
// table: Next[u][v] is the first hop after u on a shortest u→v path
// (NoHop for unreachable pairs, u itself on the diagonal).
type APSPResult struct {
	Dist [][]int64
	Next [][]int64
}

// Path reconstructs a shortest u→v path from the routing table, or nil if
// v is unreachable or no routing table was computed.
func (r *APSPResult) Path(u, v int) []int {
	if r.Next == nil || u < 0 || v < 0 || u >= len(r.Next) || v >= len(r.Next) {
		return nil
	}
	if ring.IsInf(r.Dist[u][v]) {
		return nil
	}
	path := []int{u}
	cur := u
	for cur != v {
		hop := r.Next[cur][v]
		if hop < 0 || int(hop) >= len(r.Next) || len(path) > len(r.Next) {
			return nil
		}
		cur = int(hop)
		path = append(path, cur)
	}
	return path
}

func truncateResult(res *distance.Result, n int) *APSPResult {
	out := &APSPResult{Dist: truncateRows(res.Dist, n)}
	if res.Next != nil {
		out.Next = truncateRows(res.Next, n)
		// Padded nodes cannot occur on finite paths, so truncation is safe.
	}
	return out
}

func truncateRows(m *ccmm.RowMat[int64], n int) [][]int64 {
	out := make([][]int64, n)
	for v := 0; v < n; v++ {
		row := make([]int64, n)
		copy(row, m.Rows[v][:n])
		out[v] = row
	}
	return out
}

// APSP computes exact all-pairs shortest paths and routing tables for
// weighted directed graphs (integer weights, negative allowed, no negative
// cycles) by min-plus iterated squaring on the 3D algorithm —
// O(n^{1/3} log n) rounds (Corollary 6). The 3D algorithm runs on any
// clique size, so the instance is simulated unpadded.
func (s *Clique) APSP(g *Weighted, opts ...CallOption) (res *APSPResult, stats Stats, err error) {
	r, err := s.begin("APSP", g.N(), anySize, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer r.end(&stats, &err)
	dres, derr := distance.APSPSemiring(r.net, padWeighted(g, r.n))
	if derr != nil {
		err = derr
		return
	}
	res = truncateResult(dres, r.orig)
	return
}

// APSP is the one-shot form of Clique.APSP.
func APSP(g *Weighted, opts ...Option) (*APSPResult, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.APSP(g)
}

// APSPUnweighted computes exact all-pairs shortest paths of an unweighted
// undirected graph by Seidel's algorithm — Õ(n^ρ) rounds (Corollary 7).
// No routing table is produced; see APSPUnweightedWithRouting.
func (s *Clique) APSPUnweighted(g *Graph, opts ...CallOption) (*APSPResult, Stats, error) {
	return s.apspUnweighted("APSPUnweighted", g, opts)
}

func (s *Clique) apspUnweighted(op string, g *Graph, opts []CallOption) (res *APSPResult, stats Stats, err error) {
	r, err := s.begin(op, g.N(), ringSize, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer r.end(&stats, &err)
	d, derr := distance.APSPSeidel(r.net, r.engine(), padGraph(g, r.n))
	if derr != nil {
		err = derr
		return
	}
	res = &APSPResult{Dist: truncateRows(d, r.orig)}
	r.recycle(d)
	return
}

// APSPUnweighted is the one-shot form of Clique.APSPUnweighted.
func APSPUnweighted(g *Graph, opts ...Option) (*APSPResult, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.APSPUnweighted(g)
}

// APSPUnweightedWithRouting runs Seidel's algorithm and then recovers a
// routing table with the witness machinery of §3.4 (Lemma 21).
func (s *Clique) APSPUnweightedWithRouting(g *Graph, opts ...CallOption) (res *APSPResult, stats Stats, err error) {
	r, err := s.begin("APSPUnweightedWithRouting", g.N(), ringSize, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer r.end(&stats, &err)
	padded := padGraph(g, r.n)
	d, derr := distance.APSPSeidel(r.net, r.engine(), padded)
	if derr != nil {
		err = derr
		return
	}
	w := r.s.getMat(r.n)
	r.borrowed = append(r.borrowed, w)
	for u := 0; u < r.n; u++ {
		row := w.Rows[u]
		for v := 0; v < r.n; v++ {
			switch {
			case u == v:
				row[v] = 0
			case padded.HasEdge(u, v):
				row[v] = 1
			default:
				row[v] = ring.Inf
			}
		}
	}
	oracle := distance.MinPlusOracle(r.net, r.engine())
	next, derr := distance.RoutingFromDistances(r.net, oracle, w, d, distance.WitnessOpts{Seed: r.cfg.seed})
	if derr != nil {
		err = derr
		return
	}
	res = &APSPResult{Dist: truncateRows(d, r.orig), Next: truncateRows(next, r.orig)}
	r.recycle(d)
	r.recycle(next)
	return
}

// APSPUnweightedWithRouting is the one-shot form of
// Clique.APSPUnweightedWithRouting.
func APSPUnweightedWithRouting(g *Graph, opts ...Option) (*APSPResult, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.APSPUnweightedWithRouting(g)
}

// APSPSmallWeights computes exact all-pairs shortest paths for directed
// graphs with positive integer weights and weighted diameter U in
// Õ(U·n^ρ) rounds (Corollary 8, via the Lemma 18 ring embedding).
func (s *Clique) APSPSmallWeights(g *Weighted, opts ...CallOption) (res *APSPResult, stats Stats, err error) {
	r, err := s.begin("APSPSmallWeights", g.N(), ringSize, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer r.end(&stats, &err)
	d, derr := distance.APSPSmallWeights(r.net, r.engine(), padWeighted(g, r.n))
	if derr != nil {
		err = derr
		return
	}
	res = &APSPResult{Dist: truncateRows(d, r.orig)}
	r.recycle(d)
	return
}

// APSPSmallWeights is the one-shot form of Clique.APSPSmallWeights.
func APSPSmallWeights(g *Weighted, opts ...Option) (*APSPResult, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.APSPSmallWeights(g)
}

// APSPApprox computes (1+ε)-approximate all-pairs shortest paths for
// directed graphs with non-negative integer weights in O(n^{ρ+o(1)})
// rounds (Theorem 9). The returned stretch is the proven bound
// (1+δ)^⌈log₂ n⌉ for the δ in effect (see WithDelta); with the default δ
// the stretch is 1+o(1).
func (s *Clique) APSPApprox(g *Weighted, opts ...CallOption) (res *APSPResult, stretch float64, stats Stats, err error) {
	r, err := s.begin("APSPApprox", g.N(), ringSize, opts)
	if err != nil {
		return nil, 0, Stats{}, err
	}
	defer r.end(&stats, &err)
	d, str, derr := distance.APSPApprox(r.net, r.engine(), padWeighted(g, r.n),
		distance.ApproxOpts{Delta: r.cfg.delta})
	if derr != nil {
		err = derr
		return
	}
	res = &APSPResult{Dist: truncateRows(d, r.orig)}
	stretch = str
	r.recycle(d)
	return
}

// APSPApprox is the one-shot form of Clique.APSPApprox.
func APSPApprox(g *Weighted, opts ...Option) (*APSPResult, float64, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return nil, 0, Stats{}, err
	}
	defer s.Close()
	return s.APSPApprox(g)
}

// APSPNaive is the Θ(n)-round learn-everything baseline (per-node
// Dijkstra); non-negative weights only. Like the other semiring entry
// points it runs on the instance's own clique size (anySize never pads),
// but the padded size is resolved through the same session machinery so
// engine and padding options behave consistently across all APSP variants.
func (s *Clique) APSPNaive(g *Weighted, opts ...CallOption) (res *APSPResult, stats Stats, err error) {
	r, err := s.begin("APSPNaive", g.N(), anySize, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer r.end(&stats, &err)
	d, derr := baseline.NaiveAPSP(r.net, padWeighted(g, r.n))
	if derr != nil {
		err = derr
		return
	}
	res = &APSPResult{Dist: truncateRows(d, r.orig)}
	r.recycle(d)
	return
}

// APSPNaive is the one-shot form of Clique.APSPNaive.
func APSPNaive(g *Weighted, opts ...Option) (*APSPResult, Stats, error) {
	s, err := oneShot(g.N(), opts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.APSPNaive(g)
}

// ValidateRouting checks a distance matrix and routing table against the
// graph: every recorded path must exist and realise its distance. Intended
// for tests and examples.
func ValidateRouting(g *Weighted, res *APSPResult) error {
	if res.Next == nil {
		return fmt.Errorf("algclique: no routing table to validate")
	}
	return distance.ValidateRouting(g, denseOf(res.Dist), denseOf(res.Next))
}
