package algclique_test

import (
	"reflect"
	"sync"
	"testing"

	cc "github.com/algebraic-clique/algclique"
)

// TestTrimConcurrentWithOps hammers Trim against in-flight operations on
// the same session — the exact interleaving a pool's eviction goroutine
// produces. The session mutex serialises them: every product must come
// out bit-identical to an undisturbed run, and the race detector (CI runs
// this under -race) must stay quiet.
func TestTrimConcurrentWithOps(t *testing.T) {
	const n, ops = 12, 30
	a, b := sessionTestMat(n, 61), sessionTestMat(n, 62)

	ref, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, _, err := ref.DistanceProduct(a, b)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				sess.Trim()
			}
		}
	}()
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < ops; i++ {
			got, _, err := sess.DistanceProduct(a, b)
			if err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("op %d: product corrupted by concurrent Trim", i)
				return
			}
		}
	}()
	wg.Wait()

	if st := sess.Stats(); len(st.Ops) != ops {
		t.Fatalf("ledger has %d ops, want %d", len(st.Ops), ops)
	}
}
