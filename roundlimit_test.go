package algclique_test

import (
	"errors"
	"math/rand/v2"
	"testing"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/clique"
)

func TestWithRoundLimitReturnsTypedError(t *testing.T) {
	g := cc.RandomConnectedWeighted(27, 0.3, 20, true, 1)
	// Exact APSP needs ~190 rounds at n = 27; a 10-round budget must abort
	// cleanly with the typed error, not a panic.
	_, _, err := cc.APSP(g, cc.WithRoundLimit(10))
	var lim *clique.RoundLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want *clique.RoundLimitError", err)
	}
	if lim.Limit != 10 {
		t.Errorf("limit = %d, want 10", lim.Limit)
	}

	// A generous budget must succeed.
	if _, _, err := cc.APSP(g, cc.WithRoundLimit(100000)); err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
}

func TestWithRoundLimitAcrossEntryPoints(t *testing.T) {
	g := cc.GNP(64, 0.3, false, 2)
	cases := []struct {
		name string
		run  func() error
	}{
		{"triangles", func() error { _, _, err := cc.CountTriangles(g, cc.WithRoundLimit(3)); return err }},
		{"c4count", func() error { _, _, err := cc.CountFourCycles(g, cc.WithRoundLimit(3)); return err }},
		{"seidel", func() error { _, _, err := cc.APSPUnweighted(g, cc.WithRoundLimit(3)); return err }},
		{"matmul", func() error {
			a := randMat(nil2rand(), 64, 5)
			_, _, err := cc.MatMul(a, a, cc.WithRoundLimit(2))
			return err
		}},
		{"girth", func() error {
			_, _, _, err := cc.Girth(g, cc.WithRoundLimit(3), cc.WithColourings(5))
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var lim *clique.RoundLimitError
			if err := tc.run(); !errors.As(err, &lim) {
				t.Errorf("err = %v, want round-limit error", err)
			}
		})
	}
}

// nil2rand returns a fresh deterministic rand for test-matrix construction.
func nil2rand() *rand.Rand { return rand.New(rand.NewPCG(9, 9)) }
