package algclique_test

import (
	"math/rand/v2"
	"testing"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/graphs"
)

func TestMatMulPadsArbitrarySizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{1, 2, 5, 10, 17, 30} {
		a := randMat(rng, n, 20)
		b := randMat(rng, n, 20)
		p, stats, err := cc.MatMul(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := mulRef(a, b)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if p[i][j] != want[i][j] {
					t.Fatalf("n=%d: wrong product at (%d,%d)", n, i, j)
				}
			}
		}
		if stats.N < n || (n > 1 && stats.Rounds < 1) {
			t.Errorf("n=%d: implausible stats %+v", n, stats)
		}
		if stats.N != n && stats.PaddedFrom != n {
			t.Errorf("n=%d: padding not reported: %+v", n, stats)
		}
	}
}

func randMat(rng *rand.Rand, n int, lim int64) [][]int64 {
	out := make([][]int64, n)
	for i := range out {
		out[i] = make([]int64, n)
		for j := range out[i] {
			out[i][j] = rng.Int64N(2*lim+1) - lim
		}
	}
	return out
}

func mulRef(a, b [][]int64) [][]int64 {
	n := len(a)
	out := make([][]int64, n)
	for i := range out {
		out[i] = make([]int64, n)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				out[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return out
}

func TestMatMulStrictSemantics(t *testing.T) {
	// Under Auto, WithoutPadding never fails: engine resolution falls back
	// to the 3D (or naive) algorithm, which runs any size unpadded.
	a := randMat(rand.New(rand.NewPCG(2, 1)), 10, 5)
	p, stats, err := cc.MatMul(a, a, cc.WithoutPadding())
	if err != nil {
		t.Fatalf("strict auto run rejected: %v", err)
	}
	if stats.N != 10 || stats.PaddedFrom != 0 {
		t.Errorf("strict run not unpadded: %+v", stats)
	}
	want := mulRef(a, a)
	for i := range want {
		for j := range want[i] {
			if p[i][j] != want[i][j] {
				t.Fatalf("strict product wrong at (%d,%d)", i, j)
			}
		}
	}
	// Forcing the bilinear engine still rejects scheme-incompatible sizes
	// under WithoutPadding, and accepts compatible ones.
	if _, _, err := cc.MatMul(a, a, cc.WithEngine(cc.Fast), cc.WithoutPadding()); err == nil {
		t.Error("scheme-incompatible size accepted by strict fast engine")
	}
	b := randMat(rand.New(rand.NewPCG(2, 2)), 16, 5)
	if _, _, err := cc.MatMul(b, b, cc.WithoutPadding()); err != nil {
		t.Errorf("compatible size rejected: %v", err)
	}
}

func TestDistanceProduct(t *testing.T) {
	a := [][]int64{
		{0, 3, cc.Inf},
		{cc.Inf, 0, 4},
		{1, cc.Inf, 0},
	}
	p, stats, err := cc.DistanceProduct(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if p[0][2] != 7 || p[2][1] != 4 || p[0][0] != 0 {
		t.Errorf("distance product wrong: %v", p)
	}
	// Min-plus products run unpadded: the 3D engine takes any clique size.
	if stats.N != 3 || stats.PaddedFrom != 0 {
		t.Errorf("expected unpadded 3-node run, got %+v", stats)
	}
	if _, _, err := cc.DistanceProduct(a, a, cc.WithEngine(cc.Fast)); err == nil {
		t.Error("fast engine accepted for min-plus")
	}
}

func TestMatMulBool(t *testing.T) {
	a := [][]int64{{0, 1}, {0, 0}}
	b := [][]int64{{0, 0}, {1, 0}}
	p, _, err := cc.MatMulBool(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p[0][0] != 1 || p[0][1] != 0 || p[1][0] != 0 {
		t.Errorf("bool product wrong: %v", p)
	}
}

func TestCountingAPIsWithPadding(t *testing.T) {
	// A 10-node graph (Petersen) exercises the padding path for every
	// counting entry point.
	g := cc.Petersen()
	tri, stats, err := cc.CountTriangles(g)
	if err != nil || tri != 0 {
		t.Errorf("Petersen triangles = (%d, %v)", tri, err)
	}
	if stats.PaddedFrom != 10 {
		t.Errorf("expected padding: %+v", stats)
	}
	c4, _, err := cc.CountFourCycles(g)
	if err != nil || c4 != 0 {
		t.Errorf("Petersen C4s = (%d, %v)", c4, err)
	}
	k5 := cc.Complete(5, false)
	tri, _, err = cc.CountTriangles(k5)
	if err != nil || tri != 10 {
		t.Errorf("K5 triangles = (%d, %v), want 10", tri, err)
	}
	c4, _, err = cc.CountFourCycles(k5)
	if err != nil || c4 != 15 {
		t.Errorf("K5 C4s = (%d, %v), want 15", c4, err)
	}
}

func TestCountTrianglesAllEnginesAgree(t *testing.T) {
	g := cc.GNP(27, 0.3, false, 4)
	want := graphs.CountTrianglesRef(g)
	for _, e := range []cc.Engine{cc.Auto, cc.Fast, cc.Semiring3D, cc.Naive} {
		got, _, err := cc.CountTriangles(g, cc.WithEngine(e))
		if err != nil {
			t.Fatalf("engine %v: %v", e, err)
		}
		if got != want {
			t.Errorf("engine %v: %d triangles, want %d", e, got, want)
		}
	}
}

func TestDetectFourCycleAPI(t *testing.T) {
	found, stats, err := cc.DetectFourCycle(cc.Torus(4, 5))
	if err != nil || !found {
		t.Errorf("torus C4 = (%v, %v)", found, err)
	}
	if stats.Rounds < 1 {
		t.Error("no rounds recorded")
	}
	found, _, err = cc.DetectFourCycle(cc.Petersen())
	if err != nil || found {
		t.Errorf("Petersen C4 = (%v, %v)", found, err)
	}
}

func TestDetectCycleAPI(t *testing.T) {
	g, _ := cc.PlantedCycle(14, 5, 0.02, false, 3)
	found, _, err := cc.DetectCycle(g, 5, cc.WithColourings(150), cc.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("planted 5-cycle missed")
	}
	found, _, err = cc.DetectCycle(cc.Tree(14, 1), 4, cc.WithColourings(20))
	if err != nil || found {
		t.Errorf("tree 4-cycle = (%v, %v)", found, err)
	}
}

func TestGirthAPI(t *testing.T) {
	val, ok, _, err := cc.Girth(cc.Petersen(), cc.WithColourings(150), cc.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !ok || val != 5 {
		t.Errorf("Petersen girth = (%d, %v), want (5, true)", val, ok)
	}
	val, ok, _, err = cc.Girth(cc.Cycle(12, true))
	if err != nil {
		t.Fatal(err)
	}
	if !ok || val != 12 {
		t.Errorf("directed C12 girth = (%d, %v)", val, ok)
	}
	_, ok, _, err = cc.Girth(cc.Tree(13, 5))
	if err != nil || ok {
		t.Errorf("tree girth ok=%v err=%v", ok, err)
	}
}

func TestAPSPAPIs(t *testing.T) {
	g := cc.RandomConnectedWeighted(20, 0.2, 9, true, 11)
	want, err := graphs.FloydWarshall(g)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, res *cc.APSPResult) {
		t.Helper()
		for u := 0; u < 20; u++ {
			for v := 0; v < 20; v++ {
				if res.Dist[u][v] != want.At(u, v) {
					t.Fatalf("%s: d(%d,%d) = %d, want %d", name, u, v, res.Dist[u][v], want.At(u, v))
				}
			}
		}
	}

	exact, stats, err := cc.APSP(g)
	if err != nil {
		t.Fatal(err)
	}
	check("semiring", exact)
	// The semiring APSP runs unpadded on the instance's own 20-node clique.
	if stats.PaddedFrom != 0 || stats.N != 20 {
		t.Errorf("APSP expected unpadded 20-node stats, got %+v", stats)
	}
	if err := cc.ValidateRouting(g, exact); err != nil {
		t.Fatal(err)
	}
	path := exact.Path(0, 7)
	if len(path) < 2 || path[0] != 0 || path[len(path)-1] != 7 {
		t.Errorf("bad path: %v", path)
	}

	small, _, err := cc.APSPSmallWeights(g)
	if err != nil {
		t.Fatal(err)
	}
	check("small-weights", small)

	naive, _, err := cc.APSPNaive(g)
	if err != nil {
		t.Fatal(err)
	}
	check("naive", naive)

	approx, stretch, _, err := cc.APSPApprox(g, cc.WithDelta(0.2))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			exactD, approxD := want.At(u, v), approx.Dist[u][v]
			if cc.IsInf(exactD) != cc.IsInf(approxD) {
				t.Fatalf("approx infinity mismatch at (%d,%d)", u, v)
			}
			if cc.IsInf(exactD) {
				continue
			}
			if approxD < exactD || float64(approxD) > stretch*float64(exactD)+1e-9 {
				t.Fatalf("approx out of bounds at (%d,%d): %d vs %d (stretch %.3f)", u, v, approxD, exactD, stretch)
			}
		}
	}
}

func TestAPSPUnweightedAPI(t *testing.T) {
	g := cc.GNP(20, 0.2, false, 13)
	res, _, err := cc.APSPUnweighted(g)
	if err != nil {
		t.Fatal(err)
	}
	want := graphs.BFSAllPairs(g)
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			if res.Dist[u][v] != want.At(u, v) {
				t.Fatalf("Seidel API d(%d,%d) = %d, want %d", u, v, res.Dist[u][v], want.At(u, v))
			}
		}
	}

	withRouting, _, err := cc.APSPUnweightedWithRouting(g, cc.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.ValidateRouting(cc.UnitWeights(g), withRouting); err != nil {
		t.Fatal(err)
	}
}

func TestDolevBaselineAPI(t *testing.T) {
	g := cc.GNP(20, 0.4, false, 17)
	fast, _, err := cc.CountTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	dolev, _, err := cc.CountTrianglesDolev(g)
	if err != nil {
		t.Fatal(err)
	}
	if fast != dolev {
		t.Errorf("fast (%d) and Dolev (%d) disagree", fast, dolev)
	}
}

func TestStatsPhasesPresent(t *testing.T) {
	g := cc.GNP(16, 0.3, false, 19)
	_, stats, err := cc.CountTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Phases) == 0 {
		t.Fatal("no phase breakdown")
	}
	var sum int64
	for _, p := range stats.Phases {
		sum += p.Rounds
	}
	if sum != stats.Rounds {
		t.Errorf("phase rounds %d != total %d", sum, stats.Rounds)
	}
}

func TestEngineStrings(t *testing.T) {
	for _, e := range []cc.Engine{cc.Auto, cc.Fast, cc.Semiring3D, cc.Naive} {
		if e.String() == "" {
			t.Error("empty engine name")
		}
	}
}
