module github.com/algebraic-clique/algclique

go 1.24
