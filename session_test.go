package algclique_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/clique"
)

func sessionTestMat(n int, seed int64) cc.Mat {
	m := make(cc.Mat, n)
	x := seed
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			x = (x*6364136223846793005 + 1442695040888963407) % 97
			m[i][j] = x % 5
		}
	}
	return m
}

// Two sequential operations on one session must give results identical to
// two independent one-shot calls.
func TestSessionReuseIdenticalResults(t *testing.T) {
	const n = 16
	a, b := sessionTestMat(n, 1), sessionTestMat(n, 2)

	want1, ws1, err := cc.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want2, _, err := cc.MatMul(b, a)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := cc.NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got1, gs1, err := sess.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := sess.MatMul(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, want1) || !reflect.DeepEqual(got2, want2) {
		t.Fatal("session results differ from one-shot results")
	}
	if gs1.Rounds != ws1.Rounds || gs1.Words != ws1.Words || gs1.N != ws1.N {
		t.Errorf("session stats %+v differ from one-shot stats %+v", gs1, ws1)
	}
	// The same holds for graph algorithms sharing the session.
	g := cc.GNP(n, 0.4, false, 3)
	wantTri, _, err := cc.CountTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	gotTri, _, err := sess.CountTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	if gotTri != wantTri {
		t.Errorf("session triangles = %d, one-shot = %d", gotTri, wantTri)
	}
}

// A session operation must allocate strictly less than the equivalent
// one-shot call: the network, engine plan, and padded operand buffers are
// reused instead of rebuilt. Workers are pinned to 1 so the measurement is
// deterministic.
func TestSessionFewerAllocations(t *testing.T) {
	const n = 16
	a, b := sessionTestMat(n, 4), sessionTestMat(n, 5)

	oneShot := testing.AllocsPerRun(10, func() {
		if _, _, err := cc.MatMul(a, b, cc.WithWorkers(1)); err != nil {
			t.Fatal(err)
		}
	})

	sess, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	inSession := testing.AllocsPerRun(10, func() {
		if _, _, err := sess.MatMul(a, b); err != nil {
			t.Fatal(err)
		}
	})
	if inSession >= oneShot {
		t.Errorf("session MatMul allocates %.0f allocs/op, one-shot %.0f — session must be strictly cheaper", inSession, oneShot)
	}
	t.Logf("allocs/op: one-shot %.0f, session %.0f", oneShot, inSession)
}

// cancelAfterCalls implements context.Context with an Err that flips to
// Canceled after a fixed number of polls, so cancellation hits
// deterministically mid-simulation.
type cancelAfterCalls struct {
	context.Context
	remaining int
}

func (c *cancelAfterCalls) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func TestSessionCancellation(t *testing.T) {
	g := cc.RandomConnectedWeighted(27, 0.3, 20, true, 7)
	sess, err := cc.NewClique(27)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// A context cancelled mid-simulation surfaces as context.Canceled.
	ctx := &cancelAfterCalls{Context: context.Background(), remaining: 3}
	_, _, err = sess.APSP(g, cc.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var canc *clique.CanceledError
	if !errors.As(err, &canc) {
		t.Fatalf("err = %v, want *clique.CanceledError", err)
	}

	// An already-cancelled context aborts at the first round boundary.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sess.APSP(g, cc.WithContext(pre)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}

	// The session stays usable after a cancelled operation.
	res, _, err := sess.APSP(g)
	if err != nil {
		t.Fatalf("session unusable after cancellation: %v", err)
	}
	if err := cc.ValidateRouting(g, res); err != nil {
		t.Fatalf("post-cancellation result invalid: %v", err)
	}
}

func TestSessionRoundLimitPerCall(t *testing.T) {
	g := cc.RandomConnectedWeighted(27, 0.3, 20, true, 1)
	sess, err := cc.NewClique(27)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	_, _, err = sess.APSP(g, cc.WithRoundLimit(10))
	var lim *clique.RoundLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want *clique.RoundLimitError", err)
	}
	// The limit is per call: the next call runs without it.
	if _, _, err := sess.APSP(g); err != nil {
		t.Fatalf("round limit leaked into the next call: %v", err)
	}
}

func TestSessionBatchedDistanceProducts(t *testing.T) {
	const n = 20
	pairs := make([][2]cc.Mat, 4)
	for i := range pairs {
		pairs[i] = [2]cc.Mat{sessionTestMat(n, int64(10+i)), sessionTestMat(n, int64(20+i))}
	}
	sess, err := cc.NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	prods, stats, err := sess.DistanceProducts(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(prods) != len(pairs) || len(stats) != len(pairs) {
		t.Fatalf("got %d products / %d stats, want %d", len(prods), len(stats), len(pairs))
	}
	var wantRounds int64
	for i, pair := range pairs {
		want, st, err := cc.DistanceProduct(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(prods[i], want) {
			t.Fatalf("batched product %d differs from one-shot", i)
		}
		wantRounds += st.Rounds
	}
	ledger := sess.Stats()
	if len(ledger.Ops) != len(pairs) {
		t.Fatalf("ledger has %d ops, want %d", len(ledger.Ops), len(pairs))
	}
	if ledger.Rounds != wantRounds {
		t.Errorf("ledger rounds = %d, want %d", ledger.Rounds, wantRounds)
	}
}

func TestSessionLedger(t *testing.T) {
	const n = 16
	sess, err := cc.NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	g := cc.GNP(n, 0.4, false, 9)
	if _, _, err := sess.CountTriangles(g); err != nil {
		t.Fatal(err)
	}
	a := sessionTestMat(n, 3)
	if _, _, err := sess.MatMul(a, a); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.N != n {
		t.Errorf("ledger N = %d, want %d", st.N, n)
	}
	if len(st.Ops) != 2 || st.Ops[0].Op != "CountTriangles" || st.Ops[1].Op != "MatMul" {
		t.Fatalf("ledger ops = %+v, want [CountTriangles MatMul]", st.Ops)
	}
	var sum int64
	for _, op := range st.Ops {
		if len(op.Phases) == 0 {
			t.Errorf("op %s has no phase breakdown", op.Op)
		}
		sum += op.Rounds
	}
	if st.Rounds != sum || st.Rounds == 0 {
		t.Errorf("cumulative rounds %d != per-op sum %d (or zero)", st.Rounds, sum)
	}
	sess.ResetStats()
	if st := sess.Stats(); len(st.Ops) != 0 || st.Rounds != 0 || st.Words != 0 {
		t.Errorf("ResetStats left %+v", st)
	}
}

// The ledger snapshot must be insulated from callers: mutating a returned
// snapshot (or a returned operation's Stats) cannot corrupt the session.
func TestSessionLedgerSnapshotIsolated(t *testing.T) {
	const n = 16
	sess, err := cc.NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	a := sessionTestMat(n, 3)
	_, opStats, err := sess.MatMul(a, a)
	if err != nil {
		t.Fatal(err)
	}
	want := sess.Stats()
	opStats.Phases[0].Rounds = -999 // the caller owns its Stats value
	snap := sess.Stats()
	snap.Ops[0].Phases[0].Rounds = -111
	snap.Ops[0].Rounds = -111
	got := sess.Stats()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ledger corrupted through a snapshot: %+v != %+v", got, want)
	}
}

// The buffer pool must not grow with operation count: engines allocate
// results outside the pool and recycle them into it, so an uncapped pool
// would retain one matrix per operation forever. Measured as live-heap
// growth across many operations on one session.
func TestSessionPoolBounded(t *testing.T) {
	const n, ops = 32, 300
	sess, err := cc.NewClique(n, cc.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	a := sessionTestMat(n, 4)
	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	for i := 0; i < 10; i++ { // warm the pool, networks, and plan caches
		if _, _, err := sess.DistanceProduct(a, a); err != nil {
			t.Fatal(err)
		}
	}
	before := heap()
	for i := 0; i < ops; i++ {
		if _, _, err := sess.DistanceProduct(a, a); err != nil {
			t.Fatal(err)
		}
	}
	after := heap()
	// An unbounded pool would retain ≥ ops n×n matrices (~8.5 KB each at
	// n=32, ≈ 2.5 MB); a bounded pool's steady state stays within noise.
	// The ledger legitimately grows (~100 B/op), so allow 1 MB.
	if growth := int64(after) - int64(before); growth > 1<<20 {
		t.Errorf("live heap grew %d bytes over %d ops — buffer pool is retaining per-op garbage", growth, ops)
	}
}

// Closed-session errors take precedence over the session's deferred
// ring-padding error.
func TestSessionClosedBeatsDeferredPaddingError(t *testing.T) {
	sess, err := cc.NewClique(60, cc.WithEngine(cc.Fast), cc.WithoutPadding())
	if err != nil {
		t.Fatal(err) // the ring-size error is deferred to ring-class calls
	}
	a := sessionTestMat(60, 1)
	if _, _, err := sess.MatMul(a, a); err == nil {
		t.Fatal("strict Fast at n=60 must fail")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.MatMul(a, a); !errors.Is(err, cc.ErrSessionClosed) {
		t.Errorf("err = %v, want ErrSessionClosed", err)
	}
}

func TestSessionClosedAndSizeMismatch(t *testing.T) {
	sess, err := cc.NewClique(16)
	if err != nil {
		t.Fatal(err)
	}
	a := sessionTestMat(8, 1)
	if _, _, err := sess.MatMul(a, a); err == nil {
		t.Error("8×8 operands on an n=16 session must fail")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close must be idempotent, got %v", err)
	}
	b := sessionTestMat(16, 1)
	if _, _, err := sess.MatMul(b, b); !errors.Is(err, cc.ErrSessionClosed) {
		t.Errorf("err = %v, want ErrSessionClosed", err)
	}
	if _, err := cc.NewClique(0); err == nil {
		t.Error("NewClique(0) must fail")
	}
}

// Sessions serialise concurrent callers; results must match the
// single-threaded ones. This is the test the -race CI job gates.
func TestSessionConcurrentUse(t *testing.T) {
	const n = 16
	sess, err := cc.NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	g := cc.GNP(n, 0.4, false, 11)
	wantTri, _, err := cc.CountTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	a := sessionTestMat(n, 6)
	wantProd, _, err := cc.MatMul(a, a)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			tri, _, err := sess.CountTriangles(g)
			if err == nil && tri != wantTri {
				err = fmt.Errorf("triangles = %d, want %d", tri, wantTri)
			}
			if err != nil {
				errc <- err
			}
		}()
		go func() {
			defer wg.Done()
			p, _, err := sess.MatMul(a, a)
			if err == nil && !reflect.DeepEqual(p, wantProd) {
				err = fmt.Errorf("concurrent MatMul result differs")
			}
			if err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if ops := len(sess.Stats().Ops); ops != 8 {
		t.Errorf("ledger recorded %d ops, want 8", ops)
	}
}

// MatMulBroadcast now rides the same option/stats machinery as every other
// entry point: round limits and phase breakdowns apply.
func TestBroadcastThroughConfigPath(t *testing.T) {
	const n = 8
	a, b := sessionTestMat(n, 1), sessionTestMat(n, 2)
	want, _, err := cc.MatMul(a, b, cc.WithEngine(cc.Naive))
	if err != nil {
		t.Fatal(err)
	}
	p, stats, err := cc.MatMulBroadcast(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatal("broadcast product differs from unicast product")
	}
	if len(stats.Phases) == 0 {
		t.Error("broadcast stats have no phase breakdown")
	}
	if stats.N != n || stats.Rounds < int64(n) {
		t.Errorf("broadcast stats = %+v, want N=%d and ≥ %d rounds", stats, n, n)
	}
	_, _, err = cc.MatMulBroadcast(a, b, cc.WithRoundLimit(3))
	var lim *clique.RoundLimitError
	if !errors.As(err, &lim) {
		t.Errorf("broadcast round limit: err = %v, want *clique.RoundLimitError", err)
	}
}

// The one-shot wrappers accept both option scopes in one flat list.
func TestOptionScopesInteroperate(t *testing.T) {
	g := cc.Petersen()
	opts := []cc.Option{cc.WithEngine(cc.Fast), cc.WithSeed(2), cc.WithColourings(150)}
	v, ok, _, err := cc.Girth(g, opts...)
	if err != nil || !ok || v != 5 {
		t.Fatalf("girth = %d, %v, %v; want 5", v, ok, err)
	}
	// Session scope: engine on the session, seed on the call.
	sess, err := cc.NewClique(g.N(), cc.WithEngine(cc.Fast))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	v, ok, _, err = sess.Girth(g, cc.WithSeed(2), cc.WithColourings(150))
	if err != nil || !ok || v != 5 {
		t.Fatalf("session girth = %d, %v, %v; want 5", v, ok, err)
	}
}

// BenchmarkOneShotDistanceProduct anchors the session benchmarks in
// alloc_bench_test.go: the one-shot path pays network construction,
// engine/scheme resolution, and operand allocation on every call.
func BenchmarkOneShotDistanceProduct(b *testing.B) {
	const n = 27
	x, y := sessionTestMat(n, 1), sessionTestMat(n, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := cc.DistanceProduct(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
