package algclique_test

import (
	"errors"
	"testing"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

func TestSquareAdjacencySparseAPI(t *testing.T) {
	g := cc.GNP(40, 0.05, false, 5)
	sq, stats, err := cc.SquareAdjacencySparse(g)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the algebraic square of the adjacency matrix.
	n := g.N()
	a := make([][]int64, n)
	for v := 0; v < n; v++ {
		a[v] = make([]int64, n)
		for _, u := range g.Neighbors(v) {
			a[v][u] = 1
		}
	}
	want, _, err := cc.MatMul(a, a)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if sq[u][v] != want[u][v] {
				t.Fatalf("A²(%d,%d) = %d, want %d", u, v, sq[u][v], want[u][v])
			}
		}
	}
	if stats.Rounds > 250 {
		t.Errorf("sparse square used %d rounds", stats.Rounds)
	}

	// Dense graphs must report ErrTooDense (wrapped).
	if _, _, err := cc.SquareAdjacencySparse(cc.Complete(20, false)); !errors.Is(err, subgraph.ErrTooDense) {
		t.Errorf("dense graph err = %v, want ErrTooDense", err)
	}

	// Tiny graphs are padded to the packing threshold.
	small := cc.Path(5, false)
	sq, stats, err = cc.SquareAdjacencySparse(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(sq) != 5 || sq[0][2] != 1 || sq[0][1] != 0 {
		t.Errorf("padded small square wrong: %v", sq)
	}
	if stats.PaddedFrom != 5 {
		t.Errorf("padding not reported: %+v", stats)
	}
}
