package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/ccmm"
)

// The csr experiment squares GNP(n, c/n) adjacency matrices through the
// CSR operand plane at n from 10⁴ up to 10⁵ — sizes where a single dense
// n×n int64 buffer (8n² bytes) ranges from 800 MB to 80 GB and must never
// exist. Each row records the deterministic simulator charges (rounds,
// words), the process allocation profile around the product (mallocs,
// bytes allocated, runtime.MemStats.Sys as the peak-footprint proxy), and
// the ccmm.DenseAllocs counter every dense row-matrix constructor bumps.
//
// The gate is two-layered:
//
//   - hard memory invariants that hold on any machine: the DenseAllocs
//     delta across the product must be zero (no dense n×n buffer on the
//     CSR path, pooled or not), the result must come back sparse, total
//     bytes allocated must stay below one dense matrix's 8n², and at
//     n ≥ 10⁵ the whole process footprint must sit far below it —
//     the "peak RSS sublinear in n²" acceptance criterion;
//   - trajectory bounds against the committed BENCH_csr.json: the seeded
//     generator makes nnz exact, so input/output nnz must match the
//     baseline bit-for-bit, rounds/words within benchTolerance, and the
//     allocation counts within a slightly wider band (pool warm-up and
//     goroutine stacks add one-off noise that round counts don't have).
//
// The refreshed file is written back and uploaded as a CI artifact so an
// intentional change can replace the baseline.

const csrBaselinePath = "BENCH_csr.json"

// csrMemTolerance is the gate band for allocation metrics: byte and
// malloc counts are dominated by the deterministic tuple streams but
// carry one-off runtime noise (pool growth, stack moves) that the
// round/word ledger doesn't, so they get a wider band than benchTolerance
// plus a small absolute slack.
const (
	csrMemTolerance  = 0.25
	csrMemSlackBytes = 1 << 20
)

type csrRow struct {
	N            int     `json:"n"`
	AvgDeg       float64 `json:"avg_deg"`
	NNZIn        int64   `json:"nnz_in"`
	NNZOut       int64   `json:"nnz_out"`
	SparseResult bool    `json:"sparse_result"`
	Rounds       int64   `json:"rounds"`
	Words        int64   `json:"words"`
	Allocs       uint64  `json:"allocs"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	SysBytes     uint64  `json:"sys_bytes"`
	DenseAllocs  int64   `json:"dense_allocs"`
	DenseBytes   uint64  `json:"dense_matrix_bytes"`
}

type csrFile struct {
	Experiment string   `json:"experiment"`
	Note       string   `json:"note"`
	Results    []csrRow `json:"results"`
}

func csrKey(r csrRow) string { return fmt.Sprintf("%d/%.1f", r.N, r.AvgDeg) }

// gnpAdjacency draws a GNP(n, avgDeg/n) adjacency straight into CSR form
// with geometric skip sampling — Θ(nnz) work and memory, never a dense
// row, so the generator itself cannot mask a dense allocation in the
// product under test. Val stays nil: the adjacency encoding is structure
// only.
func gnpAdjacency(n int, avgDeg float64, seed uint64) *cc.CSR {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	p := avgDeg / float64(n)
	m := &cc.CSR{N: n, RowPtr: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		c := -1
		for {
			// Geometric(p) skip to the next present edge.
			u := rng.Float64()
			skip := 1
			for q := 1 - p; u < 1 && q > 0; {
				f := u / q
				if f >= 1 {
					break
				}
				u = f
				skip++
				if skip > n {
					break
				}
			}
			c += skip
			if c >= n {
				break
			}
			m.Col = append(m.Col, int32(c))
		}
		m.RowPtr[v+1] = int64(len(m.Col))
	}
	return m
}

// measureCSRRow squares one seeded GNP adjacency on the CSR path and
// captures the full charge and memory profile around the single product.
func measureCSRRow(n int, avgDeg float64, seed uint64) csrRow {
	adj := gnpAdjacency(n, avgDeg, seed)
	runtime.GC() // level the collector so the alloc window is the product's own
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	dense0 := ccmm.DenseAllocs()
	sq, st, err := cc.SquareAdjacencyCSR(adj)
	check(err)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	row := csrRow{
		N: n, AvgDeg: avgDeg,
		NNZIn:        adj.NNZ(),
		SparseResult: sq.IsSparse(),
		Rounds:       st.Rounds,
		Words:        st.Words,
		Allocs:       ms1.Mallocs - ms0.Mallocs,
		AllocBytes:   ms1.TotalAlloc - ms0.TotalAlloc,
		SysBytes:     ms1.Sys,
		DenseAllocs:  ccmm.DenseAllocs() - dense0,
		DenseBytes:   8 * uint64(n) * uint64(n),
	}
	if sq.IsSparse() {
		row.NNZOut = sq.Sparse.NNZ()
	} else {
		for _, r := range sq.Dense {
			for _, x := range r {
				if x != 0 {
					row.NNZOut++
				}
			}
		}
	}
	return row
}

// measureCSR runs the campaign smallest-first so MemStats.Sys — a
// monotone high-water mark of memory obtained from the OS — reflects each
// row's own footprint rather than a larger predecessor's.
func measureCSR() []csrRow {
	var rows []csrRow
	for _, cfg := range []struct {
		n      int
		avgDeg float64
	}{
		{10000, 2},
		{10000, 8},
		{100000, 8},
	} {
		fmt.Printf("   squaring GNP(%d, %.0f/n) on the CSR plane...\n", cfg.n, cfg.avgDeg)
		rows = append(rows, measureCSRRow(cfg.n, cfg.avgDeg, uint64(cfg.n)*31+uint64(cfg.avgDeg)))
	}
	return rows
}

func csrGate(base, cur []csrRow) []string {
	var fails []string
	for _, r := range cur {
		// Hard invariants — machine-independent, hold with or without a
		// committed baseline.
		if r.DenseAllocs != 0 {
			fails = append(fails, fmt.Sprintf("n=%d c=%.0f: CSR path allocated %d dense n×n row matrices; want 0",
				r.N, r.AvgDeg, r.DenseAllocs))
		}
		if !r.SparseResult {
			fails = append(fails, fmt.Sprintf("n=%d c=%.0f: adjacency square densified on a sparse input", r.N, r.AvgDeg))
		}
		if r.AllocBytes >= r.DenseBytes {
			fails = append(fails, fmt.Sprintf("n=%d c=%.0f: %d bytes allocated exceeds one dense n×n matrix (%d bytes)",
				r.N, r.AvgDeg, r.AllocBytes, r.DenseBytes))
		}
		// The headline sublinearity assertion: at n = 10⁵ a dense matrix
		// is 80 GB; the whole process must fit in a small fraction of it.
		if r.N >= 100000 && r.SysBytes > r.DenseBytes/8 {
			fails = append(fails, fmt.Sprintf("n=%d c=%.0f: process footprint %d bytes is not sublinear in n² (dense matrix = %d bytes)",
				r.N, r.AvgDeg, r.SysBytes, r.DenseBytes))
		}
	}
	baseByKey := map[string]csrRow{}
	for _, b := range base {
		baseByKey[csrKey(b)] = b
	}
	worse := func(now, then int64) bool { return float64(now) > float64(then)*(1+benchTolerance) }
	for _, r := range cur {
		b, ok := baseByKey[csrKey(r)]
		if !ok {
			continue
		}
		// The generator is seeded and the simulator deterministic: nnz
		// must reproduce exactly, charges within the usual band.
		if r.NNZIn != b.NNZIn || r.NNZOut != b.NNZOut {
			fails = append(fails, fmt.Sprintf("n=%d c=%.0f: nnz %d→%d differs from committed %d→%d (seeded run must reproduce exactly)",
				r.N, r.AvgDeg, r.NNZIn, r.NNZOut, b.NNZIn, b.NNZOut))
		}
		if worse(r.Rounds, b.Rounds) {
			fails = append(fails, fmt.Sprintf("n=%d c=%.0f: rounds %d > baseline %d", r.N, r.AvgDeg, r.Rounds, b.Rounds))
		}
		if worse(r.Words, b.Words) {
			fails = append(fails, fmt.Sprintf("n=%d c=%.0f: words %d > baseline %d", r.N, r.AvgDeg, r.Words, b.Words))
		}
		if float64(r.Allocs) > float64(b.Allocs)*(1+csrMemTolerance)+64 {
			fails = append(fails, fmt.Sprintf("n=%d c=%.0f: allocs %d > baseline %d", r.N, r.AvgDeg, r.Allocs, b.Allocs))
		}
		if float64(r.AllocBytes) > float64(b.AllocBytes)*(1+csrMemTolerance)+csrMemSlackBytes {
			fails = append(fails, fmt.Sprintf("n=%d c=%.0f: alloc bytes %d > baseline %d", r.N, r.AvgDeg, r.AllocBytes, b.AllocBytes))
		}
	}
	return fails
}

// csrBench is the `ccbench csr` experiment entry point.
func csrBench() {
	cur := measureCSR()

	var committed csrFile
	gated := false
	if raw, err := os.ReadFile(csrBaselinePath); err == nil {
		check(json.Unmarshal(raw, &committed))
		gated = len(committed.Results) > 0
	}
	if fails := csrGate(committed.Results, cur); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "   REGRESSION:", f)
		}
		check(fmt.Errorf("csr: %d CSR-plane memory/charge regression(s)", len(fails)))
	}

	out := csrFile{
		Experiment: "csr-adjacency-square",
		Note: "GNP(n, c/n) adjacency squares through the CSR operand plane (SquareAdjacencyCSR); gated on the zero " +
			"dense-allocation invariant, sparse results, total allocation below one dense n×n matrix, process " +
			"footprint sublinear in n² at n=1e5, exact seeded nnz reproduction, and ±10% rounds/words versus the " +
			"committed baseline",
		Results: cur,
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	check(err)
	raw = append(raw, '\n')
	check(os.WriteFile(csrBaselinePath, raw, 0o644))
	fmt.Printf("   wrote %s\n", csrBaselinePath)
	if gated {
		fmt.Printf("   no regression > %.0f%% versus committed baseline\n", benchTolerance*100)
	} else {
		fmt.Printf("   no committed baseline found at %s; snapshot recorded\n", csrBaselinePath)
	}
	fmt.Println("        n    c    nnz(A)    nnz(A²)  rounds         words      allocs   alloc MiB   sys MiB  dense-allocs")
	for _, r := range cur {
		fmt.Printf("   %6d  %3.0f  %8d  %9d  %6d  %12d  %10d  %10.1f  %8.1f  %12d\n",
			r.N, r.AvgDeg, r.NNZIn, r.NNZOut, r.Rounds, r.Words, r.Allocs,
			float64(r.AllocBytes)/(1<<20), float64(r.SysBytes)/(1<<20), r.DenseAllocs)
	}
}
