package main

import (
	"encoding/json"
	"fmt"
	"os"

	cc "github.com/algebraic-clique/algclique"
)

// The sparse experiment measures the density-aware planner: the same
// integer product A·A on GNP adjacency matrices, once on a default Auto
// session (census + sparse routing) and once with the census disabled
// (WithSparseThreshold(0) — the purely static dense plan). The simulator
// is deterministic for a fixed seed, so every recorded number is exact and
// machine-independent; the gate enforces
//
//   - no sparse/dense round or word count regressing more than 10%
//     against the committed BENCH_sparse.json, and
//   - the hard invariant that on the sparse inputs (p ∈ {2/n, 8/n}) the
//     auto route never charges more rounds than the dense plan — whether
//     the census chose the sparse engine or correctly kept the product on
//     the dense one.
//
// The refreshed file is written back (and uploaded as a CI artifact) so an
// intentional change can replace the baseline.

const sparseBaselinePath = "BENCH_sparse.json"

type sparseRow struct {
	N           int     `json:"n"`
	P           float64 `json:"p"`
	Routing     string  `json:"routing"`
	RoundsAuto  int64   `json:"rounds_auto"`
	WordsAuto   int64   `json:"words_auto"`
	RoundsDense int64   `json:"rounds_dense"`
	WordsDense  int64   `json:"words_dense"`
	Speedup     float64 `json:"round_speedup"`
	Match       bool    `json:"results_match"`
}

type sparseFile struct {
	Experiment string      `json:"experiment"`
	Note       string      `json:"note"`
	Results    []sparseRow `json:"results"`
}

func sparseKey(r sparseRow) string { return fmt.Sprintf("%d/%.6f", r.N, r.P) }

func measureSparse() []sparseRow {
	var rows []sparseRow
	for _, n := range []int{64, 100, 256} {
		for _, p := range []float64{2 / float64(n), 8 / float64(n), 0.5} {
			g := cc.GNP(n, p, false, 7)
			a := make([][]int64, n)
			for v := 0; v < n; v++ {
				a[v] = make([]int64, n)
				for _, u := range g.Neighbors(v) {
					a[v][u] = 1
				}
			}
			auto, err := cc.NewClique(n)
			check(err)
			pa, sa, err := auto.MatMul(a, a)
			check(err)
			check(auto.Close())
			dense, err := cc.NewClique(n, cc.WithSparseThreshold(0))
			check(err)
			pd, sd, err := dense.MatMul(a, a)
			check(err)
			check(dense.Close())
			match := true
			for i := 0; i < n && match; i++ {
				for j := 0; j < n; j++ {
					if pa[i][j] != pd[i][j] {
						match = false
						break
					}
				}
			}
			rows = append(rows, sparseRow{
				N: n, P: p, Routing: sa.Routing,
				RoundsAuto: sa.Rounds, WordsAuto: sa.Words,
				RoundsDense: sd.Rounds, WordsDense: sd.Words,
				Speedup: float64(sd.Rounds) / float64(sa.Rounds),
				Match:   match,
			})
		}
	}
	return rows
}

func sparseGate(base, cur []sparseRow) []string {
	var fails []string
	for _, r := range cur {
		if !r.Match {
			fails = append(fails, fmt.Sprintf("n=%d p=%.4f: sparse-routed product differs from the dense plan", r.N, r.P))
		}
		// Hard invariant: whenever the census sends a sparse input down
		// the sparse path, that path must never charge more rounds than
		// the dense plan. When the census (correctly) keeps a product
		// dense, the auto route may exceed the static plan only by the
		// bounded census/fallback overhead.
		if r.P < 0.5 {
			if r.Routing == "sparse" && r.RoundsAuto > r.RoundsDense {
				fails = append(fails, fmt.Sprintf("n=%d p=%.4f: sparse path %d rounds exceeds dense plan %d on a sparse input",
					r.N, r.P, r.RoundsAuto, r.RoundsDense))
			}
			if r.Routing != "sparse" && r.RoundsAuto > r.RoundsDense+5 {
				fails = append(fails, fmt.Sprintf("n=%d p=%.4f: census overhead %d rounds over the dense plan's %d exceeds the fixed bound (routing=%s)",
					r.N, r.P, r.RoundsAuto-r.RoundsDense, r.RoundsDense, r.Routing))
			}
		}
	}
	baseByKey := map[string]sparseRow{}
	for _, b := range base {
		baseByKey[sparseKey(b)] = b
	}
	worse := func(now, then int64) bool { return float64(now) > float64(then)*(1+benchTolerance) }
	for _, r := range cur {
		b, ok := baseByKey[sparseKey(r)]
		if !ok {
			continue
		}
		if worse(r.RoundsAuto, b.RoundsAuto) {
			fails = append(fails, fmt.Sprintf("n=%d p=%.4f: auto rounds %d > baseline %d", r.N, r.P, r.RoundsAuto, b.RoundsAuto))
		}
		if worse(r.WordsAuto, b.WordsAuto) {
			fails = append(fails, fmt.Sprintf("n=%d p=%.4f: auto words %d > baseline %d", r.N, r.P, r.WordsAuto, b.WordsAuto))
		}
		if worse(r.RoundsDense, b.RoundsDense) {
			fails = append(fails, fmt.Sprintf("n=%d p=%.4f: dense rounds %d > baseline %d", r.N, r.P, r.RoundsDense, b.RoundsDense))
		}
		if worse(r.WordsDense, b.WordsDense) {
			fails = append(fails, fmt.Sprintf("n=%d p=%.4f: dense words %d > baseline %d", r.N, r.P, r.WordsDense, b.WordsDense))
		}
		if b.Routing == "sparse" && r.Routing != "sparse" {
			fails = append(fails, fmt.Sprintf("n=%d p=%.4f: census no longer routes sparse (now %q)", r.N, r.P, r.Routing))
		}
	}
	return fails
}

// sparseBench is the `ccbench sparse` experiment entry point.
func sparseBench() {
	cur := measureSparse()

	var committed sparseFile
	gated := false
	if raw, err := os.ReadFile(sparseBaselinePath); err == nil {
		check(json.Unmarshal(raw, &committed))
		gated = len(committed.Results) > 0
	}
	if fails := sparseGate(committed.Results, cur); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "   REGRESSION:", f)
		}
		check(fmt.Errorf("sparse: %d density-aware planner regression(s)", len(fails)))
	}

	out := sparseFile{
		Experiment: "sparse-vs-dense",
		Note: "Auto (density census + sparse tile engine) vs WithSparseThreshold(0) (static dense plan) on GNP " +
			"adjacency squaring; deterministic simulator counts, gated at ±10% plus the hard sparse≤dense round " +
			"invariant on sparse inputs",
		Results: cur,
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	check(err)
	raw = append(raw, '\n')
	check(os.WriteFile(sparseBaselinePath, raw, 0o644))
	fmt.Printf("   wrote %s\n", sparseBaselinePath)
	if gated {
		fmt.Printf("   no regression > %.0f%% versus committed baseline\n", benchTolerance*100)
	} else {
		fmt.Printf("   no committed baseline found at %s; snapshot recorded\n", sparseBaselinePath)
	}
	fmt.Println("     n       p  routing         rounds(auto)  rounds(dense)  words(auto)  words(dense)  speedup")
	for _, r := range cur {
		fmt.Printf("   %3d  %.4f  %-14s %13d %14d %12d %13d  %6.2fx\n",
			r.N, r.P, r.Routing, r.RoundsAuto, r.RoundsDense, r.WordsAuto, r.WordsDense, r.Speedup)
	}
}
