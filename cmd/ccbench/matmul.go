package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/matrix"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// The matmul experiment measures the simulator's multiply-and-message hot
// path — the substrate every algorithm in the library stands on — and
// maintains the BENCH_matmul.json trajectory file:
//
//   - amortised per-product cost of repeated session DistanceProduct /
//     MatMul calls (rounds, words, allocs/op, ns/op) at n ∈ {27, 64, 100},
//   - the same products on the direct (typed, analytically-charged) versus
//     wire (encoded) transport: identical rounds/words enforced at
//     measurement time, wall-clock for both, and the wire/direct speedup,
//   - Boolean products through the bit-packed transport versus the
//     unpacked reference, on the 3D engine and the naive gather.
//
// Regressions are gated on the deterministic, machine-independent metrics —
// round counts, word counts, allocs/op, the packed/unpacked round ratio —
// each within benchTolerance of the committed baseline, plus the
// direct-path speedup ratio against an absolute floor (same-process
// drift cancels, but the ratio's magnitude varies with the runner's
// memory system, so it gates on transportSpeedupFloor, not the baseline).
// Absolute wall-clock ns/op is recorded for the trajectory but not gated —
// CI hardware varies, and every wall-clock regression on this path shows up
// in allocs, message volume, or the speedup ratio first.

const (
	benchBaselinePath = "BENCH_matmul.json"
	benchTolerance    = 0.10 // fail on >10% regression
	benchWarmups      = 3
	benchOps          = 10

	// transportSpeedupFloor gates the direct-vs-wire ratio at n ≥ 64 as an
	// absolute bound rather than relative to the committed baseline: the
	// ratio is same-process-relative (drift cancels) but its magnitude is
	// set by the machine's memory system — the same commit measures the
	// distance product at 3.0–4.0× across healthy hardware — so a
	// baseline-relative gate fails on runner variance, not regressions.
	// The floor sits below the weakest healthy configuration (session
	// MatMul at n=64 measures ~1.4–1.5×): what it catches is the direct
	// plane collapsing toward wire parity, which any genuine regression
	// (reintroduced copies or encode/decode on the typed path) produces
	// at every size.
	transportSpeedupFloor = 1.15
)

// benchProductStats is one measured product configuration.
type benchProductStats struct {
	Rounds   int64   `json:"rounds"`
	Words    int64   `json:"words"`
	AllocsOp uint64  `json:"allocs_op"`
	NsOp     float64 `json:"ns_op"`
}

// benchTransportStats compares the direct (typed, analytically-charged)
// and wire (encoded) transports on one session product. Rounds and words
// must be bit-identical between the two — the measurement hard-fails
// otherwise — so only one copy of each is recorded. The speedup column is
// wire_ns_op / direct_ns_op over the recorded fields, each the minimum of
// interleaved timed repetitions: scheduler and GC noise is one-sided, so
// per-transport minima are the stablest wall-clock statistic available,
// and interleaving makes slow machine phases hit both transports alike —
// which is what lets this one hardware-relative metric hold a gate.
type benchTransportStats struct {
	Kind         string  `json:"kind"`
	N            int     `json:"n"`
	Rounds       int64   `json:"rounds"`
	Words        int64   `json:"words"`
	DirectNsOp   float64 `json:"direct_ns_op"`
	WireNsOp     float64 `json:"wire_ns_op"`
	DirectAllocs uint64  `json:"direct_allocs_op"`
	WireAllocs   uint64  `json:"wire_allocs_op"`
	Speedup      float64 `json:"speedup"`
}

// benchBoolStats compares packed and unpacked Boolean transports.
type benchBoolStats struct {
	Engine         string  `json:"engine"`
	N              int     `json:"n"`
	RoundsPacked   int64   `json:"rounds_packed"`
	RoundsUnpacked int64   `json:"rounds_unpacked"`
	WordsPacked    int64   `json:"words_packed"`
	WordsUnpacked  int64   `json:"words_unpacked"`
	RoundRatio     float64 `json:"round_ratio"`
	WordRatio      float64 `json:"word_ratio"`
}

// benchKernelStats compares a specialised local kernel against its scalar
// reference twin on identical operands in the same process: FastNsOp and
// RefNsOp are per-call minima over interleaved repetitions and Ratio is
// their quotient, so hardware cancels out exactly as in the transport
// speedup. Floor > 0 marks a gated entry — the ratio hard-fails below the
// floor regardless of any committed baseline (the ISSUE-level speedup
// claims: packed Boolean ≥4×, unrolled min-plus ≥1.3×, both at n ≥ 256).
// Floor = 0 entries are trajectory-only: the witness kernel's margin and
// the memory-bound n=512 min-plus ratio are recorded but too compressed
// by bandwidth effects to gate robustly.
type benchKernelStats struct {
	Kernel   string  `json:"kernel"`
	N        int     `json:"n"`
	FastNsOp float64 `json:"fast_ns_op"`
	RefNsOp  float64 `json:"ref_ns_op"`
	Ratio    float64 `json:"ratio"`
	Floor    float64 `json:"floor,omitempty"`
}

// benchSnapshot is one full measurement of the hot path.
type benchSnapshot struct {
	SessionDistanceProduct map[string]benchProductStats `json:"session_distance_product"`
	SessionMatMul          map[string]benchProductStats `json:"session_matmul"`
	Transport              []benchTransportStats        `json:"transport_direct_vs_wire"`
	Bool                   []benchBoolStats             `json:"bool_packed_vs_unpacked"`
	Kernels                []benchKernelStats           `json:"local_kernels"`
}

// benchFile is the committed trajectory: the pre-optimisation numbers
// (fixed at the commit that introduced the experiment) and the current
// baseline the gate compares against.
type benchFile struct {
	Experiment string         `json:"experiment"`
	Note       string         `json:"note"`
	Before     *benchSnapshot `json:"before,omitempty"`
	BeforeNote string         `json:"before_note,omitempty"`
	After      *benchSnapshot `json:"after"`
}

func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// benchReps is the number of timed repetitions per configuration; the
// minimum is reported, which filters scheduler and GC noise well enough
// for the (relative) speedup gate to hold a 10% tolerance.
const benchReps = 5

// measureSession runs warmups, then benchReps timed loops of benchOps
// products on one session, and reports the amortised steady-state cost of
// the best repetition.
func measureSession(n int, mul func(s *cc.Clique, a, b [][]int64) (cc.Stats, error), opts ...cc.SessionOption) benchProductStats {
	a, b := randSquare(n, 71), randSquare(n, 72)
	runtime.GC() // level the collector between configurations
	s, err := cc.NewClique(n, opts...)
	check(err)
	defer s.Close()
	var last cc.Stats
	for i := 0; i < benchWarmups; i++ {
		last, err = mul(s, a, b)
		check(err)
	}
	best := benchProductStats{}
	for rep := 0; rep < benchReps; rep++ {
		m0, t0 := mallocCount(), time.Now()
		for i := 0; i < benchOps; i++ {
			last, err = mul(s, a, b)
			check(err)
		}
		dt, dm := time.Since(t0), mallocCount()-m0
		// Each metric keeps its own minimum across repetitions: wall-clock
		// and allocation noise are independent, so the rep that wins one
		// need not win the other.
		ns := float64(dt.Nanoseconds()) / benchOps
		allocs := dm / benchOps
		if rep == 0 || ns < best.NsOp {
			best.NsOp = ns
		}
		if rep == 0 || allocs < best.AllocsOp {
			best.AllocsOp = allocs
		}
	}
	best.Rounds, best.Words = last.Rounds, last.Words
	return best
}

// measureTransport runs the same session product on both transports —
// interleaved, so drift cancels — and reports the pair; rounds and words
// must agree exactly (the differential tests prove it, the bench refuses
// to record numbers that contradict it).
func measureTransport(kind string, n int, mul func(s *cc.Clique, a, b [][]int64) (cc.Stats, error)) benchTransportStats {
	a, b := randSquare(n, 71), randSquare(n, 72)
	runtime.GC()
	sd, err := cc.NewClique(n)
	check(err)
	defer sd.Close()
	sw, err := cc.NewClique(n, cc.WithWireTransport())
	check(err)
	defer sw.Close()
	var dst, wst cc.Stats
	for i := 0; i < benchWarmups; i++ {
		dst, err = mul(sd, a, b)
		check(err)
		wst, err = mul(sw, a, b)
		check(err)
	}
	if dst.Rounds != wst.Rounds || dst.Words != wst.Words {
		check(fmt.Errorf("matmul: %s n=%d: transports diverged: direct %d rounds / %d words, wire %d rounds / %d words",
			kind, n, dst.Rounds, dst.Words, wst.Rounds, wst.Words))
	}
	// Transport comparisons run a longer timed loop than the session
	// trajectory: the speedup ratio is gated, so its inputs get the extra
	// stability budget.
	const transportOps = 2 * benchOps
	time1 := func(s *cc.Clique) (ns float64, allocs uint64) {
		m0, t0 := mallocCount(), time.Now()
		for i := 0; i < transportOps; i++ {
			_, err := mul(s, a, b)
			check(err)
		}
		return float64(time.Since(t0).Nanoseconds()) / transportOps, (mallocCount() - m0) / transportOps
	}
	out := benchTransportStats{Kind: kind, N: n, Rounds: dst.Rounds, Words: dst.Words}
	for rep := 0; rep < benchReps; rep++ {
		dns, dallocs := time1(sd)
		wns, wallocs := time1(sw)
		if rep == 0 || dns < out.DirectNsOp {
			out.DirectNsOp = dns
		}
		if rep == 0 || wns < out.WireNsOp {
			out.WireNsOp = wns
		}
		if rep == 0 || dallocs < out.DirectAllocs {
			out.DirectAllocs = dallocs
		}
		if rep == 0 || wallocs < out.WireAllocs {
			out.WireAllocs = wallocs
		}
	}
	out.Speedup = out.WireNsOp / out.DirectNsOp
	return out
}

// measureBool runs the same Boolean product through the packed and
// unpacked transports on the chosen semiring engine.
func measureBool(engine string, n int) benchBoolStats {
	rng := rand.New(rand.NewPCG(73, uint64(n)))
	rows := make([][]bool, n)
	for i := range rows {
		rows[i] = make([]bool, n)
		for j := range rows[i] {
			rows[i][j] = rng.IntN(2) == 1
		}
	}
	s := &ccmm.RowMat[bool]{Rows: rows}
	br := ring.Bool{}
	run := func(codec ring.BulkCodec[bool]) (rounds, words int64, p *ccmm.RowMat[bool]) {
		net := clique.New(n)
		defer net.Close()
		var err error
		if engine == "naive-gather" {
			p, err = ccmm.NaiveGather[bool](net, br, codec, s, s)
		} else {
			p, err = ccmm.Semiring3D[bool](net, br, codec, s, s)
		}
		check(err)
		return net.Rounds(), net.Words(), p
	}
	ru, wu, pu := run(ring.AsBulk[bool](br))
	rp, wp, pp := run(ring.PackedBool{})
	for v := range pu.Rows {
		for j := range pu.Rows[v] {
			if pu.Rows[v][j] != pp.Rows[v][j] {
				check(fmt.Errorf("matmul: packed Boolean product differs from unpacked at (%d,%d), n=%d", v, j, n))
			}
		}
	}
	return benchBoolStats{
		Engine:         engine,
		N:              n,
		RoundsPacked:   rp,
		RoundsUnpacked: ru,
		WordsPacked:    wp,
		WordsUnpacked:  wu,
		RoundRatio:     float64(ru) / float64(rp),
		WordRatio:      float64(wu) / float64(wp),
	}
}

// measureKernel times one fast/reference kernel pair, interleaved with
// per-side minima like measureTransport.
func measureKernel(kernel string, n int, floor float64, fast, ref func()) benchKernelStats {
	runtime.GC()
	const kernelOps = 3
	time1 := func(f func()) float64 {
		t0 := time.Now()
		for i := 0; i < kernelOps; i++ {
			f()
		}
		return float64(time.Since(t0).Nanoseconds()) / kernelOps
	}
	fast() // warm pools and caches
	ref()
	out := benchKernelStats{Kernel: kernel, N: n, Floor: floor}
	for rep := 0; rep < benchReps; rep++ {
		fns := time1(fast)
		rns := time1(ref)
		if rep == 0 || fns < out.FastNsOp {
			out.FastNsOp = fns
		}
		if rep == 0 || rns < out.RefNsOp {
			out.RefNsOp = rns
		}
	}
	out.Ratio = out.RefNsOp / out.FastNsOp
	return out
}

// measureKernels measures the local kernel plane: each specialised kernel
// against its reference twin. Operand shapes follow the kernels' sweet
// spots — Boolean density 0.1 keeps the scalar reference off both of its
// short-circuits (row skips at low density, saturation exits at high), and
// min-plus entries mix ⅛ infinities into small non-negative weights, the
// distance-product steady state.
func measureKernels() []benchKernelStats {
	boolPair := func(n int) (fast, ref func()) {
		rng := rand.New(rand.NewPCG(74, uint64(n)))
		a, b := matrix.New[bool](n, n), matrix.New[bool](n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Float64() < 0.1)
				b.Set(i, j, rng.Float64() < 0.1)
			}
		}
		out := matrix.New[bool](n, n)
		return func() { matrix.MulBoolInto(out, a, b) },
			func() { matrix.MulBoolScalarInto(out, a, b) }
	}
	minPlusMat := func(n int, seed uint64) *matrix.Dense[int64] {
		rng := rand.New(rand.NewPCG(seed, uint64(n)))
		m := matrix.New[int64](n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.IntN(8) == 0 {
					m.Set(i, j, ring.Inf)
				} else {
					m.Set(i, j, rng.Int64N(1000))
				}
			}
		}
		return m
	}
	minPlusPair := func(n int) (fast, ref func()) {
		a, b := minPlusMat(n, 75), minPlusMat(n, 76)
		out := matrix.New[int64](n, n)
		return func() { matrix.MulMinPlusInto(out, a, b) },
			func() { matrix.MulMinPlusRefInto(out, a, b) }
	}
	minPlusWPair := func(n int) (fast, ref func()) {
		rng := rand.New(rand.NewPCG(77, uint64(n)))
		mk := func() *matrix.Dense[ring.ValW] {
			m := matrix.New[ring.ValW](n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if rng.IntN(8) == 0 {
						m.Set(i, j, ring.ValW{V: ring.Inf, W: ring.NoWitness})
					} else {
						m.Set(i, j, ring.ValW{V: rng.Int64N(1000), W: rng.Int64N(int64(n))})
					}
				}
			}
			return m
		}
		a, b := mk(), mk()
		out := matrix.New[ring.ValW](n, n)
		return func() { matrix.MulMinPlusWInto(out, a, b) },
			func() { matrix.MulMinPlusWRefInto(out, a, b) }
	}
	var out []benchKernelStats
	// Gated floors hold at n=256; n=512 rides along ungated (the Boolean
	// ratio only widens there, the min-plus ratio goes memory-bound).
	for _, cfg := range []struct {
		n     int
		floor float64
	}{{256, 4.0}, {512, 4.0}} {
		fast, ref := boolPair(cfg.n)
		out = append(out, measureKernel("bool-packed/scalar", cfg.n, cfg.floor, fast, ref))
	}
	for _, cfg := range []struct {
		n     int
		floor float64
	}{{256, 1.3}, {512, 0}} {
		fast, ref := minPlusPair(cfg.n)
		out = append(out, measureKernel("minplus-unrolled/ref", cfg.n, cfg.floor, fast, ref))
	}
	fast, ref := minPlusWPair(256)
	out = append(out, measureKernel("minplusw-inlined/ref", 256, 0, fast, ref))
	return out
}

func measureSnapshot() *benchSnapshot {
	snap := &benchSnapshot{
		SessionDistanceProduct: map[string]benchProductStats{},
		SessionMatMul:          map[string]benchProductStats{},
	}
	for _, n := range []int{27, 64, 100} {
		key := fmt.Sprintf("%d", n)
		snap.SessionDistanceProduct[key] = measureSession(n, func(s *cc.Clique, a, b [][]int64) (cc.Stats, error) {
			_, st, err := s.DistanceProduct(a, b)
			return st, err
		})
		snap.SessionMatMul[key] = measureSession(n, func(s *cc.Clique, a, b [][]int64) (cc.Stats, error) {
			_, st, err := s.MatMul(a, b)
			return st, err
		})
	}
	mm := func(s *cc.Clique, a, b [][]int64) (cc.Stats, error) {
		_, st, err := s.MatMul(a, b)
		return st, err
	}
	dp := func(s *cc.Clique, a, b [][]int64) (cc.Stats, error) {
		_, st, err := s.DistanceProduct(a, b)
		return st, err
	}
	for _, n := range []int{27, 64, 100} {
		snap.Transport = append(snap.Transport,
			measureTransport("matmul", n, mm),
			measureTransport("distance-product", n, dp))
	}
	snap.Bool = []benchBoolStats{
		measureBool("semiring-3d", 64),
		measureBool("semiring-3d", 512),
		measureBool("naive-gather", 512),
	}
	snap.Kernels = measureKernels()
	return snap
}

// gate compares a current snapshot against the committed baseline and
// returns every violated bound.
func gate(base, cur *benchSnapshot) []string {
	var fails []string
	worse := func(now, then float64) bool {
		return float64(now) > float64(then)*(1+benchTolerance)
	}
	checkProducts := func(kind string, base, cur map[string]benchProductStats) {
		for key, b := range base {
			c, ok := cur[key]
			if !ok {
				fails = append(fails, fmt.Sprintf("%s n=%s: missing from current run", kind, key))
				continue
			}
			if worse(float64(c.Rounds), float64(b.Rounds)) {
				fails = append(fails, fmt.Sprintf("%s n=%s: rounds %d > baseline %d", kind, key, c.Rounds, b.Rounds))
			}
			if worse(float64(c.Words), float64(b.Words)) {
				fails = append(fails, fmt.Sprintf("%s n=%s: words %d > baseline %d", kind, key, c.Words, b.Words))
			}
			// Small absolute slack keeps one-off runtime allocations (pool
			// growth, map rehash) from tripping the relative bound.
			if float64(c.AllocsOp) > float64(b.AllocsOp)*(1+benchTolerance)+64 {
				fails = append(fails, fmt.Sprintf("%s n=%s: allocs/op %d > baseline %d", kind, key, c.AllocsOp, b.AllocsOp))
			}
		}
	}
	checkProducts("session-distance-product", base.SessionDistanceProduct, cur.SessionDistanceProduct)
	checkProducts("session-matmul", base.SessionMatMul, cur.SessionMatMul)
	baseTransport := map[string]benchTransportStats{}
	for _, b := range base.Transport {
		baseTransport[fmt.Sprintf("%s/%d", b.Kind, b.N)] = b
	}
	for _, c := range cur.Transport {
		b, ok := baseTransport[fmt.Sprintf("%s/%d", c.Kind, c.N)]
		if !ok {
			continue
		}
		if worse(float64(c.Rounds), float64(b.Rounds)) {
			fails = append(fails, fmt.Sprintf("transport %s n=%d: rounds %d > baseline %d", c.Kind, c.N, c.Rounds, b.Rounds))
		}
		if worse(float64(c.Words), float64(b.Words)) {
			fails = append(fails, fmt.Sprintf("transport %s n=%d: words %d > baseline %d", c.Kind, c.N, c.Words, b.Words))
		}
		if float64(c.DirectAllocs) > float64(b.DirectAllocs)*(1+benchTolerance)+64 {
			fails = append(fails, fmt.Sprintf("transport %s n=%d: direct allocs/op %d > baseline %d", c.Kind, c.N, c.DirectAllocs, b.DirectAllocs))
		}
		// The direct-path speedup ratio is the one wall-clock-derived gate.
		// Same-process interleaving cancels run-to-run drift, but the
		// ratio's *magnitude* still tracks the machine's memory system —
		// the same commit measures 3.0–3.3× on one box and 4.0× on
		// another — so comparing against the committed baseline fails CI
		// on hardware variance, not regressions. The gate is an absolute
		// floor instead: the direct plane must stay decisively faster than
		// wire encoding, and a collapse toward parity is a genuine
		// regression on any hardware. Sub-millisecond sizes are recorded
		// but not gated — their ratio is timer noise.
		if c.N >= 64 && c.Speedup < transportSpeedupFloor {
			fails = append(fails, fmt.Sprintf("transport %s n=%d: direct-path speedup %.2fx below the %.1fx floor",
				c.Kind, c.N, c.Speedup, transportSpeedupFloor))
		}
	}
	baseBool := map[string]benchBoolStats{}
	for _, b := range base.Bool {
		baseBool[fmt.Sprintf("%s/%d", b.Engine, b.N)] = b
	}
	for _, c := range cur.Bool {
		b, ok := baseBool[fmt.Sprintf("%s/%d", c.Engine, c.N)]
		if !ok {
			continue
		}
		if worse(float64(c.RoundsPacked), float64(b.RoundsPacked)) {
			fails = append(fails, fmt.Sprintf("bool %s n=%d: packed rounds %d > baseline %d",
				c.Engine, c.N, c.RoundsPacked, b.RoundsPacked))
		}
		if c.RoundRatio < b.RoundRatio*(1-benchTolerance) {
			fails = append(fails, fmt.Sprintf("bool %s n=%d: packed/unpacked round ratio %.1f < baseline %.1f",
				c.Engine, c.N, c.RoundRatio, b.RoundRatio))
		}
	}
	for _, c := range cur.Kernels {
		// Kernel ratios gate on their absolute floors, not the committed
		// baseline: both sides of each ratio run in the same process, so
		// the floor is hardware-independent, and the floors are the PR's
		// stated speedup claims — a drop below one is a kernel regression
		// no matter what the last snapshot said.
		if c.Floor > 0 && c.Ratio < c.Floor {
			fails = append(fails, fmt.Sprintf("kernel %s n=%d: speedup %.2fx below the %.1fx floor",
				c.Kernel, c.N, c.Ratio, c.Floor))
		}
	}
	return fails
}

// matmulBench is the `ccbench matmul` experiment entry point.
func matmulBench() {
	cur := measureSnapshot()

	var committed benchFile
	gated := false
	if raw, err := os.ReadFile(benchBaselinePath); err == nil {
		check(json.Unmarshal(raw, &committed))
		if committed.After != nil {
			gated = true
			if fails := gate(committed.After, cur); len(fails) > 0 {
				for _, f := range fails {
					fmt.Fprintln(os.Stderr, "   REGRESSION:", f)
				}
				check(fmt.Errorf("matmul: %d hot-path regression(s) versus %s", len(fails), benchBaselinePath))
			}
		}
	}

	out := benchFile{
		Experiment: "matmul-hotpath",
		Note: "amortised session products, direct-vs-wire transports, packed Boolean transport, and local kernel ratios; " +
			"gated on rounds/words/allocs, the packed round ratio, and absolute floors for the direct-path speedup " +
			"and per-kernel ratios (absolute ns_op recorded, not gated — hardware varies; every gated ratio is " +
			"same-process-relative and floor-gated, never baseline-relative)",
		Before:     committed.Before,
		BeforeNote: committed.BeforeNote,
		After:      cur,
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	check(err)
	raw = append(raw, '\n')
	check(os.WriteFile(benchBaselinePath, raw, 0o644))
	fmt.Printf("   wrote %s\n", benchBaselinePath)
	if gated {
		fmt.Printf("   no regression > %.0f%% versus committed baseline\n", benchTolerance*100)
	} else {
		fmt.Printf("   no committed baseline found at %s; snapshot printed only\n", benchBaselinePath)
	}
	for _, tr := range cur.Transport {
		fmt.Printf("   %s n=%d: direct %.2fms vs wire %.2fms (%.2fx), %d rounds / %d words on both\n",
			tr.Kind, tr.N, tr.DirectNsOp/1e6, tr.WireNsOp/1e6, tr.Speedup, tr.Rounds, tr.Words)
	}
	for _, b := range cur.Bool {
		fmt.Printf("   bool %s n=%d: %d → %d rounds (%.1fx), %d → %d words (%.1fx)\n",
			b.Engine, b.N, b.RoundsUnpacked, b.RoundsPacked, b.RoundRatio,
			b.WordsUnpacked, b.WordsPacked, b.WordRatio)
	}
	for _, k := range cur.Kernels {
		suffix := "trajectory only"
		if k.Floor > 0 {
			suffix = fmt.Sprintf("floor %.1fx", k.Floor)
		}
		fmt.Printf("   kernel %s n=%d: %.2fms vs %.2fms reference (%.2fx, %s)\n",
			k.Kernel, k.N, k.FastNsOp/1e6, k.RefNsOp/1e6, k.Ratio, suffix)
	}
}
