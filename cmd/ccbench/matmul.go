package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/clique"
	"github.com/algebraic-clique/algclique/internal/ring"
)

// The matmul experiment measures the simulator's multiply-and-message hot
// path — the substrate every algorithm in the library stands on — and
// maintains the BENCH_matmul.json trajectory file:
//
//   - amortised per-product cost of repeated session DistanceProduct /
//     MatMul calls (rounds, words, allocs/op, ns/op) at n ∈ {27, 64, 100},
//   - Boolean products through the bit-packed transport versus the
//     unpacked reference, on the 3D engine and the naive gather.
//
// Regressions are gated on the deterministic, machine-independent metrics:
// round counts, word counts, allocs/op, and the packed/unpacked round
// ratio, each within benchTolerance of the committed baseline. Wall-clock
// ns/op is recorded for the trajectory but not gated — CI hardware varies,
// and every wall-clock regression on this path shows up in allocs or
// message volume first.

const (
	benchBaselinePath = "BENCH_matmul.json"
	benchTolerance    = 0.10 // fail on >10% regression
	benchWarmups      = 2
	benchOps          = 6
)

// benchProductStats is one measured product configuration.
type benchProductStats struct {
	Rounds   int64   `json:"rounds"`
	Words    int64   `json:"words"`
	AllocsOp uint64  `json:"allocs_op"`
	NsOp     float64 `json:"ns_op"`
}

// benchBoolStats compares packed and unpacked Boolean transports.
type benchBoolStats struct {
	Engine         string  `json:"engine"`
	N              int     `json:"n"`
	RoundsPacked   int64   `json:"rounds_packed"`
	RoundsUnpacked int64   `json:"rounds_unpacked"`
	WordsPacked    int64   `json:"words_packed"`
	WordsUnpacked  int64   `json:"words_unpacked"`
	RoundRatio     float64 `json:"round_ratio"`
	WordRatio      float64 `json:"word_ratio"`
}

// benchSnapshot is one full measurement of the hot path.
type benchSnapshot struct {
	SessionDistanceProduct map[string]benchProductStats `json:"session_distance_product"`
	SessionMatMul          map[string]benchProductStats `json:"session_matmul"`
	Bool                   []benchBoolStats             `json:"bool_packed_vs_unpacked"`
}

// benchFile is the committed trajectory: the pre-optimisation numbers
// (fixed at the commit that introduced the experiment) and the current
// baseline the gate compares against.
type benchFile struct {
	Experiment string         `json:"experiment"`
	Note       string         `json:"note"`
	Before     *benchSnapshot `json:"before,omitempty"`
	BeforeNote string         `json:"before_note,omitempty"`
	After      *benchSnapshot `json:"after"`
}

func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// measureSession runs warmups + benchOps products on one session and
// reports the amortised steady-state cost.
func measureSession(n int, mul func(s *cc.Clique, a, b [][]int64) (cc.Stats, error)) benchProductStats {
	a, b := randSquare(n, 71), randSquare(n, 72)
	s, err := cc.NewClique(n)
	check(err)
	defer s.Close()
	var last cc.Stats
	for i := 0; i < benchWarmups; i++ {
		last, err = mul(s, a, b)
		check(err)
	}
	m0, t0 := mallocCount(), time.Now()
	for i := 0; i < benchOps; i++ {
		last, err = mul(s, a, b)
		check(err)
	}
	dt, dm := time.Since(t0), mallocCount()-m0
	return benchProductStats{
		Rounds:   last.Rounds,
		Words:    last.Words,
		AllocsOp: dm / benchOps,
		NsOp:     float64(dt.Nanoseconds()) / benchOps,
	}
}

// measureBool runs the same Boolean product through the packed and
// unpacked transports on the chosen semiring engine.
func measureBool(engine string, n int) benchBoolStats {
	rng := rand.New(rand.NewPCG(73, uint64(n)))
	rows := make([][]bool, n)
	for i := range rows {
		rows[i] = make([]bool, n)
		for j := range rows[i] {
			rows[i][j] = rng.IntN(2) == 1
		}
	}
	s := &ccmm.RowMat[bool]{Rows: rows}
	br := ring.Bool{}
	run := func(codec ring.BulkCodec[bool]) (rounds, words int64, p *ccmm.RowMat[bool]) {
		net := clique.New(n)
		defer net.Close()
		var err error
		if engine == "naive-gather" {
			p, err = ccmm.NaiveGather[bool](net, br, codec, s, s)
		} else {
			p, err = ccmm.Semiring3D[bool](net, br, codec, s, s)
		}
		check(err)
		return net.Rounds(), net.Words(), p
	}
	ru, wu, pu := run(ring.AsBulk[bool](br))
	rp, wp, pp := run(ring.PackedBool{})
	for v := range pu.Rows {
		for j := range pu.Rows[v] {
			if pu.Rows[v][j] != pp.Rows[v][j] {
				check(fmt.Errorf("matmul: packed Boolean product differs from unpacked at (%d,%d), n=%d", v, j, n))
			}
		}
	}
	return benchBoolStats{
		Engine:         engine,
		N:              n,
		RoundsPacked:   rp,
		RoundsUnpacked: ru,
		WordsPacked:    wp,
		WordsUnpacked:  wu,
		RoundRatio:     float64(ru) / float64(rp),
		WordRatio:      float64(wu) / float64(wp),
	}
}

func measureSnapshot() *benchSnapshot {
	snap := &benchSnapshot{
		SessionDistanceProduct: map[string]benchProductStats{},
		SessionMatMul:          map[string]benchProductStats{},
	}
	for _, n := range []int{27, 64, 100} {
		key := fmt.Sprintf("%d", n)
		snap.SessionDistanceProduct[key] = measureSession(n, func(s *cc.Clique, a, b [][]int64) (cc.Stats, error) {
			_, st, err := s.DistanceProduct(a, b)
			return st, err
		})
		snap.SessionMatMul[key] = measureSession(n, func(s *cc.Clique, a, b [][]int64) (cc.Stats, error) {
			_, st, err := s.MatMul(a, b)
			return st, err
		})
	}
	snap.Bool = []benchBoolStats{
		measureBool("semiring-3d", 64),
		measureBool("semiring-3d", 512),
		measureBool("naive-gather", 512),
	}
	return snap
}

// gate compares a current snapshot against the committed baseline and
// returns every violated bound.
func gate(base, cur *benchSnapshot) []string {
	var fails []string
	worse := func(now, then float64) bool {
		return float64(now) > float64(then)*(1+benchTolerance)
	}
	checkProducts := func(kind string, base, cur map[string]benchProductStats) {
		for key, b := range base {
			c, ok := cur[key]
			if !ok {
				fails = append(fails, fmt.Sprintf("%s n=%s: missing from current run", kind, key))
				continue
			}
			if worse(float64(c.Rounds), float64(b.Rounds)) {
				fails = append(fails, fmt.Sprintf("%s n=%s: rounds %d > baseline %d", kind, key, c.Rounds, b.Rounds))
			}
			if worse(float64(c.Words), float64(b.Words)) {
				fails = append(fails, fmt.Sprintf("%s n=%s: words %d > baseline %d", kind, key, c.Words, b.Words))
			}
			// Small absolute slack keeps one-off runtime allocations (pool
			// growth, map rehash) from tripping the relative bound.
			if float64(c.AllocsOp) > float64(b.AllocsOp)*(1+benchTolerance)+64 {
				fails = append(fails, fmt.Sprintf("%s n=%s: allocs/op %d > baseline %d", kind, key, c.AllocsOp, b.AllocsOp))
			}
		}
	}
	checkProducts("session-distance-product", base.SessionDistanceProduct, cur.SessionDistanceProduct)
	checkProducts("session-matmul", base.SessionMatMul, cur.SessionMatMul)
	baseBool := map[string]benchBoolStats{}
	for _, b := range base.Bool {
		baseBool[fmt.Sprintf("%s/%d", b.Engine, b.N)] = b
	}
	for _, c := range cur.Bool {
		b, ok := baseBool[fmt.Sprintf("%s/%d", c.Engine, c.N)]
		if !ok {
			continue
		}
		if worse(float64(c.RoundsPacked), float64(b.RoundsPacked)) {
			fails = append(fails, fmt.Sprintf("bool %s n=%d: packed rounds %d > baseline %d",
				c.Engine, c.N, c.RoundsPacked, b.RoundsPacked))
		}
		if c.RoundRatio < b.RoundRatio*(1-benchTolerance) {
			fails = append(fails, fmt.Sprintf("bool %s n=%d: packed/unpacked round ratio %.1f < baseline %.1f",
				c.Engine, c.N, c.RoundRatio, b.RoundRatio))
		}
	}
	return fails
}

// matmulBench is the `ccbench matmul` experiment entry point.
func matmulBench() {
	cur := measureSnapshot()

	var committed benchFile
	gated := false
	if raw, err := os.ReadFile(benchBaselinePath); err == nil {
		check(json.Unmarshal(raw, &committed))
		if committed.After != nil {
			gated = true
			if fails := gate(committed.After, cur); len(fails) > 0 {
				for _, f := range fails {
					fmt.Fprintln(os.Stderr, "   REGRESSION:", f)
				}
				check(fmt.Errorf("matmul: %d hot-path regression(s) versus %s", len(fails), benchBaselinePath))
			}
		}
	}

	out := benchFile{
		Experiment: "matmul-hotpath",
		Note: "amortised session products and packed Boolean transport; gated on rounds/words/allocs " +
			"and the packed round ratio (ns_op recorded, not gated — hardware varies)",
		Before:     committed.Before,
		BeforeNote: committed.BeforeNote,
		After:      cur,
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	check(err)
	raw = append(raw, '\n')
	check(os.WriteFile(benchBaselinePath, raw, 0o644))
	fmt.Printf("   wrote %s\n", benchBaselinePath)
	if gated {
		fmt.Printf("   no regression > %.0f%% versus committed baseline\n", benchTolerance*100)
	} else {
		fmt.Printf("   no committed baseline found at %s; snapshot printed only\n", benchBaselinePath)
	}
	for _, b := range cur.Bool {
		fmt.Printf("   bool %s n=%d: %d → %d rounds (%.1fx), %d → %d words (%.1fx)\n",
			b.Engine, b.N, b.RoundsUnpacked, b.RoundsPacked, b.RoundRatio,
			b.WordsUnpacked, b.WordsPacked, b.WordRatio)
	}
}
