// Command ccbench reproduces the evaluation artefacts of "Algebraic
// Methods in the Congested Clique" (PODC 2015) on the simulator: each
// subcommand regenerates one Table 1 row as measured round counts, with
// fitted growth exponents next to the paper's bounds.
//
// Usage:
//
//	ccbench list             # enumerate experiments
//	ccbench all              # run everything (a few minutes)
//	ccbench t1-mm-semiring   # run one experiment
//	ccbench table1           # compact Table-1-style summary at n = 64
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	cc "github.com/algebraic-clique/algclique"
)

type experiment struct {
	id    string
	title string
	run   func()
}

func main() {
	experiments := []experiment{
		{"t1-mm-semiring", "T1.1 matrix multiplication (semiring) — O(n^{1/3})", mmSemiring},
		{"t1-mm-ring", "T1.2 matrix multiplication (ring) — O(n^ρ)", mmRing},
		{"t1-triangles", "T1.3 triangle counting — ours vs Dolev et al.", triangles},
		{"t1-c4detect", "T1.4 4-cycle detection — O(1) rounds", c4Detect},
		{"t1-c4count", "T1.5 4-cycle counting — O(n^ρ)", c4Count},
		{"t1-kcycle", "T1.6 k-cycle detection — 2^{O(k)} n^ρ per colouring", kCycle},
		{"t1-girth", "T1.7 girth — Õ(n^ρ)", girthExp},
		{"t1-apsp-exact", "T1.8 weighted directed APSP — O(n^{1/3} log n)", apspExact},
		{"t1-apsp-smallw", "T1.9 small-weight APSP — Õ(U·n^ρ)", apspSmallW},
		{"t1-apsp-approx", "T1.10 (1+o(1))-approximate APSP — O(n^{ρ+o(1)})", apspApprox},
		{"t1-apsp-seidel", "T1.11 unweighted undirected APSP — O(n^ρ)", apspSeidel},
		{"x2-broadcast", "X2 broadcast-clique separation (§4, Corollary 24)", broadcastGap},
		{"x3-sparsesquare", "X3 sparse A² in O(1) rounds (§1.2 remark)", sparseSquare},
		{"x4-mm-padded", "X4 padded 3D vs naive min-plus on non-cube n (JSON)", mmPadded},
		{"session-reuse", "X5 session API: amortised vs one-shot setup (JSON)", sessionReuse},
		{"matmul", "X6 multiply-and-message hot path: bulk codecs, scratch pools, packed booleans (JSON, gated)", matmulBench},
		{"sparse", "X7 density-aware planner: sparse tile engine vs dense plan on GNP (JSON, gated)", sparseBench},
		{"serve", "X8 service plane: 2000 concurrent mixed queries over 6 tenants (JSON, gated)", serveBench},
		{"chaos", "X9 fault plane: 240 seeded chaos scenarios, typed-or-correct gate + disarmed overhead (JSON, gated)", chaosBench},
		{"csr", "X10 CSR operand plane: GNP(1e4–1e5) adjacency squares, zero-dense-allocation + peak-memory gate (JSON, gated)", csrBench},
		{"table1", "Table 1 summary at n = 64", table1},
	}
	if len(os.Args) < 2 || os.Args[1] == "list" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-18s %s\n", e.id, e.title)
		}
		if len(os.Args) < 2 {
			os.Exit(2)
		}
		return
	}
	want := os.Args[1]
	ran := false
	for _, e := range experiments {
		if want == "all" || want == e.id {
			fmt.Printf("== %s: %s\n", e.id, e.title)
			start := time.Now()
			e.run()
			fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q (try: ccbench list)\n", want)
		os.Exit(2)
	}
}

// fitExponent least-squares fits log(rounds) = a + e·log(n).
func fitExponent(ns []int, rounds []int64) float64 {
	var sx, sy, sxx, sxy float64
	k := float64(len(ns))
	for i := range ns {
		x := math.Log(float64(ns[i]))
		y := math.Log(float64(rounds[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (k*sxy - sx*sy) / (k*sxx - sx*sx)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
}

func mmSemiring() {
	ns := []int{27, 64, 125, 216, 512}
	fmt.Println("   n    rounds     words   rounds/n^(1/3)")
	var rounds []int64
	for _, n := range ns {
		a, b := randSquare(n, 1), randSquare(n, 2)
		_, stats, err := cc.MatMul(a, b, cc.WithEngine(cc.Semiring3D))
		check(err)
		rounds = append(rounds, stats.Rounds)
		fmt.Printf("%5d %9d %9d   %.2f\n", n, stats.Rounds, stats.Words,
			float64(stats.Rounds)/math.Cbrt(float64(n)))
	}
	fmt.Printf("   fitted exponent %.3f (paper: 1/3 ≈ 0.333; lower bound Ω̃(n^{1/3}) — §4)\n",
		fitExponent(ns, rounds))
}

func mmRing() {
	ns := []int{16, 64, 256, 1024}
	fmt.Println("   n    rounds     words")
	var rounds []int64
	for _, n := range ns {
		a, b := randSquare(n, 3), randSquare(n, 4)
		_, stats, err := cc.MatMul(a, b, cc.WithEngine(cc.Fast))
		check(err)
		rounds = append(rounds, stats.Rounds)
		fmt.Printf("%5d %9d %9d\n", n, stats.Rounds, stats.Words)
	}
	fmt.Printf("   fitted exponent %.3f (Strassen bound 1−2/log₂7 ≈ 0.287; paper's ω gives 0.157)\n",
		fitExponent(ns, rounds))
	for _, n := range []int{27, 216} {
		a, b := randSquare(n, 5), randSquare(n, 6)
		_, stats, err := cc.MatMul(a, b, cc.WithEngine(cc.Naive))
		check(err)
		fmt.Printf("   naive baseline n=%d: %d rounds (Θ(n))\n", n, stats.Rounds)
	}
}

func randSquare(n int, seed uint64) [][]int64 {
	g := cc.RandomWeighted(n, 0.99, 100, true, seed)
	out := make([][]int64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			if w := g.Weight(i, j); !cc.IsInf(w) {
				out[i][j] = w
			}
		}
	}
	return out
}

func triangles() {
	fmt.Println("   n    ours(rounds)  dolev(rounds)  count")
	for _, n := range []int{64, 256} {
		g := cc.GNP(n, 0.25, false, 7)
		ours, so, err := cc.CountTriangles(g, cc.WithEngine(cc.Fast))
		check(err)
		dolev, sd, err := cc.CountTrianglesDolev(g)
		check(err)
		okMark := "OK"
		if ours != dolev {
			okMark = "MISMATCH"
		}
		fmt.Printf("%5d %12d %14d  %8d (%s)\n", n, so.Rounds, sd.Rounds, ours, okMark)
	}
}

func c4Detect() {
	fmt.Println("   n    rounds   words    found")
	for _, n := range []int{16, 64, 256, 1024} {
		g := cc.GNP(n, 3.0/float64(n), false, 8)
		found, stats, err := cc.DetectFourCycle(g)
		check(err)
		fmt.Printf("%5d %8d %9d   %v\n", n, stats.Rounds, stats.Words, found)
	}
	fmt.Println("   rounds must be flat in n (Theorem 4: O(1) rounds)")
}

func c4Count() {
	ns := []int{16, 64, 256}
	fmt.Println("   n    rounds    count")
	var rounds []int64
	for _, n := range ns {
		g := cc.GNP(n, 0.2, false, 9)
		count, stats, err := cc.CountFourCycles(g, cc.WithEngine(cc.Fast))
		check(err)
		rounds = append(rounds, stats.Rounds)
		fmt.Printf("%5d %8d %9d\n", n, stats.Rounds, count)
	}
	fmt.Printf("   fitted exponent %.3f (bound: n^ρ)\n", fitExponent(ns, rounds))
}

func kCycle() {
	fmt.Println("   k   n    rounds/colouring")
	for _, k := range []int{3, 4, 5} {
		for _, n := range []int{16, 64} {
			g := cc.Tree(n, 10)
			_, stats, err := cc.DetectCycle(g, k, cc.WithColourings(2), cc.WithSeed(11))
			check(err)
			fmt.Printf("%4d %4d %10d\n", k, n, stats.Rounds/2)
		}
	}
	fmt.Println("   cost grows ~3^k at fixed n (Lemma 11: O(3^k) products per colouring)")
}

func girthExp() {
	dense := cc.GNP(64, 0.5, false, 12)
	v, ok, sd, err := cc.Girth(dense, cc.WithColourings(40), cc.WithSeed(13))
	check(err)
	fmt.Printf("   dense   n=64: girth=%d ok=%v rounds=%d (colour-coding branch)\n", v, ok, sd.Rounds)
	sparse := cc.Cycle(64, false)
	v, ok, ss, err := cc.Girth(sparse)
	check(err)
	fmt.Printf("   sparse  n=64: girth=%d ok=%v rounds=%d (gather branch)\n", v, ok, ss.Rounds)
	dir := cc.GNP(64, 0.05, true, 14)
	v, ok, sdir, err := cc.Girth(dir)
	check(err)
	fmt.Printf("   directed n=64: girth=%d ok=%v rounds=%d (doubling + binary search)\n", v, ok, sdir.Rounds)
}

func apspExact() {
	ns := []int{27, 64, 125}
	fmt.Println("   n    rounds     words")
	var rounds []int64
	for _, n := range ns {
		g := cc.RandomConnectedWeighted(n, 0.2, 50, true, 15)
		res, stats, err := cc.APSP(g)
		check(err)
		check(cc.ValidateRouting(g, res))
		rounds = append(rounds, stats.Rounds)
		fmt.Printf("%5d %9d %9d\n", n, stats.Rounds, stats.Words)
	}
	fmt.Printf("   fitted exponent %.3f (bound: n^{1/3}·log n; routing tables validated)\n",
		fitExponent(ns, rounds))
}

func apspSmallW() {
	fmt.Println("   maxW  rounds (n = 64)")
	for _, maxW := range []int64{1, 4, 8} {
		g := cc.RandomConnectedWeighted(64, 0.15, maxW, true, 16)
		_, stats, err := cc.APSPSmallWeights(g, cc.WithEngine(cc.Fast))
		check(err)
		fmt.Printf("%6d %8d\n", maxW, stats.Rounds)
	}
	fmt.Println("   rounds grow with the weighted diameter U (Corollary 8: Õ(U·n^ρ))")
}

func apspApprox() {
	g := cc.RandomConnectedWeighted(64, 0.15, 40, true, 17)
	exact, se, err := cc.APSP(g)
	check(err)
	fmt.Printf("   exact semiring APSP: %d rounds\n", se.Rounds)
	fmt.Println("   delta  rounds  stretch-bound  measured-max-stretch")
	for _, delta := range []float64{0.5, 0.25, 0.125} {
		approx, stretch, sa, err := cc.APSPApprox(g, cc.WithEngine(cc.Fast), cc.WithDelta(delta))
		check(err)
		worst := 1.0
		for u := range exact.Dist {
			for v := range exact.Dist[u] {
				e, a := exact.Dist[u][v], approx.Dist[u][v]
				if cc.IsInf(e) || e == 0 {
					continue
				}
				if r := float64(a) / float64(e); r > worst {
					worst = r
				}
			}
		}
		fmt.Printf("   %5.3f %7d %14.3f %21.3f\n", delta, sa.Rounds, stretch, worst)
	}
}

func apspSeidel() {
	ns := []int{16, 64, 256}
	fmt.Println("   n    rounds     words")
	var rounds []int64
	for _, n := range ns {
		g := cc.GNP(n, 0.15, false, 18)
		_, stats, err := cc.APSPUnweighted(g, cc.WithEngine(cc.Fast))
		check(err)
		rounds = append(rounds, stats.Rounds)
		fmt.Printf("%5d %9d %9d\n", n, stats.Rounds, stats.Words)
	}
	fmt.Printf("   fitted exponent %.3f (bound: n^ρ·log n)\n", fitExponent(ns, rounds))
	for _, n := range []int{27, 125} {
		g := cc.RandomConnectedWeighted(n, 0.2, 50, true, 19)
		_, stats, err := cc.APSPNaive(g)
		check(err)
		fmt.Printf("   naive baseline n=%d: %d rounds (Θ(n))\n", n, stats.Rounds)
	}
}

func broadcastGap() {
	fmt.Println("   n    broadcast-clique  unicast semiring  unicast fast")
	for _, n := range []int{64, 216} {
		a, b := randSquare(n, 31), randSquare(n, 32)
		_, sb, err := cc.MatMulBroadcast(a, b)
		check(err)
		_, s3, err := cc.MatMul(a, b, cc.WithEngine(cc.Semiring3D))
		check(err)
		_, sf, err := cc.MatMul(a, b, cc.WithEngine(cc.Fast))
		check(err)
		fmt.Printf("%5d %17d %17d %13d\n", n, sb.Rounds, s3.Rounds, sf.Rounds)
	}
	fmt.Println("   broadcast clique needs Ω̃(n) rounds for matmul (Corollary 24);")
	fmt.Println("   the unicast algorithms demonstrate the model separation.")
}

func sparseSquare() {
	fmt.Println("   n    rounds (sparse A²)   rounds (fast matmul A²)")
	for _, n := range []int{64, 256, 1024} {
		g := cc.GNP(n, 2.5/float64(n), false, 33)
		_, ss, err := cc.SquareAdjacencySparse(g)
		check(err)
		a := make([][]int64, n)
		for v := 0; v < n; v++ {
			a[v] = make([]int64, n)
			for _, u := range g.Neighbors(v) {
				a[v][u] = 1
			}
		}
		_, sm, err := cc.MatMul(a, a, cc.WithEngine(cc.Fast))
		check(err)
		fmt.Printf("%5d %12d %21d\n", n, ss.Rounds, sm.Rounds)
	}
	fmt.Println("   on sparse graphs the Theorem 4 machinery squares A in O(1) rounds")
}

// mmPadded compares the padded 3D engine against the naive baseline for
// min-plus products on non-cube clique sizes — the sizes that, before the
// padded cube layout, silently fell back to the Θ(n)-round gather. The
// results are emitted as one JSON object so future changes can track the
// round-count trajectory mechanically.
func mmPadded() {
	type row struct {
		N           int     `json:"n"`
		Rounds3D    int64   `json:"rounds_3d"`
		Words3D     int64   `json:"words_3d"`
		RoundsNaive int64   `json:"rounds_naive"`
		WordsNaive  int64   `json:"words_naive"`
		Speedup     float64 `json:"round_speedup"`
		Match       bool    `json:"results_match"`
	}
	report := struct {
		Experiment string `json:"experiment"`
		Metric     string `json:"metric"`
		Results    []row  `json:"results"`
	}{
		Experiment: "mm3d-padded-vs-naive",
		Metric:     "min-plus product rounds on non-cube clique sizes",
	}
	for _, n := range []int{50, 60, 100, 150, 200, 300} {
		a, b := randSquare(n, 41), randSquare(n, 42)
		p3, s3, err := cc.DistanceProduct(a, b, cc.WithEngine(cc.Semiring3D))
		check(err)
		pn, sn, err := cc.DistanceProduct(a, b, cc.WithEngine(cc.Naive))
		check(err)
		match := true
		for i := 0; i < n && match; i++ {
			for j := 0; j < n; j++ {
				if p3[i][j] != pn[i][j] {
					match = false
					break
				}
			}
		}
		if !match || s3.Rounds >= sn.Rounds {
			check(fmt.Errorf("x4-mm-padded: regression at n=%d (match=%v, 3d=%d rounds, naive=%d rounds)",
				n, match, s3.Rounds, sn.Rounds))
		}
		report.Results = append(report.Results, row{
			N:           n,
			Rounds3D:    s3.Rounds,
			Words3D:     s3.Words,
			RoundsNaive: sn.Rounds,
			WordsNaive:  sn.Words,
			Speedup:     float64(sn.Rounds) / float64(s3.Rounds),
			Match:       match,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("   ", "  ")
	check(enc.Encode(report))
	fmt.Println("   the 3D engine must match naive exactly and charge fewer rounds for n ≥ 50")
}

// sessionReuse measures what the session API amortises: a k-operation
// batch on one session (engine/scheme resolution, network construction,
// and operand buffers paid once) against k independent one-shot calls.
// Wall-clock and heap-allocation counts are emitted as one JSON object so
// regressions in the session fast path are mechanically trackable.
func sessionReuse() {
	const n, k = 64, 10
	pairs := make([][2][][]int64, k)
	for i := range pairs {
		pairs[i] = [2][][]int64{randSquare(n, uint64(51+2*i)), randSquare(n, uint64(52+2*i))}
	}

	mallocs := func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.Mallocs
	}

	// One-shot: every call rebuilds the network and re-resolves the plan.
	m0, t0 := mallocs(), time.Now()
	oneShot := make([][][]int64, k)
	for i, pair := range pairs {
		p, _, err := cc.DistanceProduct(pair[0], pair[1])
		check(err)
		oneShot[i] = p
	}
	oneShotTime, oneShotAllocs := time.Since(t0), mallocs()-m0

	// Session: setup once, then the batch.
	m1, t1 := mallocs(), time.Now()
	sess, err := cc.NewClique(n)
	check(err)
	setupTime := time.Since(t1)
	m2, t2 := mallocs(), time.Now()
	batch, stats, err := sess.DistanceProducts(pairs)
	check(err)
	batchTime, batchAllocs := time.Since(t2), mallocs()-m2
	setupAllocs := m2 - m1
	check(sess.Close())

	for i := range batch {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if batch[i][u][v] != oneShot[i][u][v] {
					check(fmt.Errorf("session-reuse: product %d mismatch at (%d,%d)", i, u, v))
				}
			}
		}
	}
	ledger := sess.Stats()
	if len(ledger.Ops) != k || len(stats) != k {
		check(fmt.Errorf("session-reuse: ledger has %d ops, want %d", len(ledger.Ops), k))
	}
	// The whole point of the session: paying setup once must beat paying it
	// k times, so the amortised per-op cost has to come in under one-shot.
	if batchAllocs/uint64(k) >= oneShotAllocs/uint64(k) {
		check(fmt.Errorf("session-reuse: regression: session batch allocates %d/op, one-shot %d/op",
			batchAllocs/uint64(k), oneShotAllocs/uint64(k)))
	}

	report := struct {
		Experiment      string  `json:"experiment"`
		N               int     `json:"n"`
		Ops             int     `json:"ops"`
		OneShotMs       float64 `json:"oneshot_total_ms"`
		OneShotAllocsOp uint64  `json:"oneshot_allocs_per_op"`
		SetupMs         float64 `json:"session_setup_ms"`
		SetupAllocs     uint64  `json:"session_setup_allocs"`
		BatchMs         float64 `json:"session_batch_ms"`
		SessionAllocsOp uint64  `json:"session_allocs_per_op"`
		LedgerRounds    int64   `json:"ledger_rounds"`
		TimeRatio       float64 `json:"session_over_oneshot_time"`
		AllocRatio      float64 `json:"session_over_oneshot_allocs"`
	}{
		Experiment:      "session-reuse",
		N:               n,
		Ops:             k,
		OneShotMs:       float64(oneShotTime.Microseconds()) / 1000,
		OneShotAllocsOp: oneShotAllocs / uint64(k),
		SetupMs:         float64(setupTime.Microseconds()) / 1000,
		SetupAllocs:     setupAllocs,
		BatchMs:         float64(batchTime.Microseconds()) / 1000,
		SessionAllocsOp: batchAllocs / uint64(k),
		LedgerRounds:    ledger.Rounds,
		TimeRatio:       float64((setupTime + batchTime).Nanoseconds()) / float64(oneShotTime.Nanoseconds()),
		AllocRatio:      float64(setupAllocs+batchAllocs) / float64(oneShotAllocs),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("   ", "  ")
	check(enc.Encode(report))
	fmt.Printf("   %d-op batch: setup paid once (%d allocs) instead of %d times; amortised allocs %d/op vs %d/op one-shot\n",
		k, setupAllocs, k, report.SessionAllocsOp, report.OneShotAllocsOp)
}

// table1 prints a compact reproduction of Table 1 at n = 64. All runs at
// one instance size share two sessions (one per engine selection), so the
// whole table reuses two networks and the cumulative ledgers total the
// reproduction's cost.
func table1() {
	type row struct {
		problem string
		rounds  int64
		prior   string
	}
	var rows []row
	add := func(problem string, rounds int64, prior string) {
		rows = append(rows, row{problem, rounds, prior})
	}

	auto, err := cc.NewClique(64)
	check(err)
	defer auto.Close()
	fast, err := cc.NewClique(64, cc.WithEngine(cc.Fast))
	check(err)
	defer fast.Close()

	a, b := randSquare(64, 21), randSquare(64, 22)
	_, s3, err := cc.MatMul(a, b, cc.WithEngine(cc.Semiring3D))
	check(err)
	add("matrix multiplication (semiring)", s3.Rounds, "—")
	_, sf, err := fast.MatMul(a, b)
	check(err)
	add("matrix multiplication (ring)", sf.Rounds, "—")

	g := cc.GNP(64, 0.25, false, 23)
	_, st, err := fast.CountTriangles(g)
	check(err)
	_, sd, err := auto.CountTrianglesDolev(g)
	check(err)
	add("triangle counting", st.Rounds, fmt.Sprintf("%d (Dolev et al.)", sd.Rounds))

	_, s4, err := auto.DetectFourCycle(cc.GNP(64, 0.05, false, 24))
	check(err)
	add("4-cycle detection", s4.Rounds, "—")
	_, sc, err := fast.CountFourCycles(g)
	check(err)
	add("4-cycle counting", sc.Rounds, "—")

	_, sk, err := auto.DetectCycle(cc.Tree(64, 25), 5, cc.WithColourings(1))
	check(err)
	add("5-cycle detection (per colouring)", sk.Rounds, "—")

	_, _, sg, err := auto.Girth(cc.GNP(64, 0.5, false, 26), cc.WithColourings(40), cc.WithSeed(2))
	check(err)
	add("girth", sg.Rounds, "—")

	wg := cc.RandomConnectedWeighted(64, 0.2, 50, true, 27)
	_, se, err := auto.APSP(wg)
	check(err)
	_, sn, err := auto.APSPNaive(wg)
	check(err)
	add("weighted directed APSP (exact)", se.Rounds, fmt.Sprintf("%d (naive)", sn.Rounds))

	_, _, sa, err := fast.APSPApprox(wg, cc.WithDelta(0.25))
	check(err)
	add("weighted APSP (1+δ approx, δ=.25)", sa.Rounds, "—")

	_, su, err := fast.APSPUnweighted(cc.GNP(64, 0.15, false, 28))
	check(err)
	add("unweighted undirected APSP", su.Rounds, "—")

	fmt.Println("   problem                              rounds   combinatorial baseline")
	for _, r := range rows {
		fmt.Printf("   %-36s %6d   %s\n", r.problem, r.rounds, r.prior)
	}
	as, fs := auto.Stats(), fast.Stats()
	fmt.Printf("   session ledgers: auto %d ops / %d rounds, fast %d ops / %d rounds\n",
		len(as.Ops), as.Rounds, len(fs.Ops), fs.Rounds)
}
