package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/serve"
)

// The chaos experiment is the fault plane's acceptance campaign: a few
// hundred seeded fault scenarios swept across engines, transports, and
// algebras, plus a faulted wave through the service plane, gated on the
// fault plane's whole contract:
//
//   - typed or correct (hard): every scenario either recovers to a
//     bit-correct, certification-vouched product or fails with a typed
//     fault-plane error (*cc.FaultError, *cc.CertificationError,
//     *serve.SessionPanicError) — never a silently wrong answer;
//   - zero hangs (hard): the whole campaign runs under a watchdog; a
//     scenario that stalls fails the run instead of wedging CI;
//   - zero lost admitted requests (hard): the serve wave's ledger must
//     account for every admitted request through poisoned sessions and
//     shutdown, and no poisoned session may be re-pooled;
//   - disarmed overhead (gated vs BENCH_matmul.json): with no fault plan
//     armed, the session hot path must charge exactly the baseline's
//     rounds and words and stay within chaosOverheadTol (+ small absolute
//     slack) of its allocs/op; an armed-but-inert plan must leave the
//     schedule untouched and add at most chaosInertAllocSlack allocs/op.
//     Wall-clock ratios (disarmed vs baseline, armed-inert vs disarmed)
//     are recorded for the trajectory but not gated — per the repo's
//     bench philosophy, regressions on this path surface in allocs and
//     message volume first, and those are deterministic.
//
// The sweep is replayable end to end: every fault draw is keyed by the
// scenario's plan seed, so a failure line names a reproducible run.

const (
	chaosBaselinePath = "BENCH_chaos.json"
	chaosWatchdog     = 10 * time.Minute
	// chaosOverheadTol bounds the disarmed clean path: allocs/op versus
	// the committed matmul baseline (rounds and words must match exactly).
	chaosOverheadTol = 0.05
	// chaosInertAllocSlack is the absolute allocs/op headroom the
	// armed-but-inert path gets over disarmed: the injector, its option
	// closure, and the per-call arming are a handful of constant
	// allocations, and anything beyond (say, a per-link or per-send
	// allocation creeping into the sweep) must fail the gate. The
	// armed-inert wall-clock ratio is recorded but not gated — it hovers
	// at 1.0, inside scheduler noise, so allocs and the exact schedule
	// are the signals that can actually hold a gate.
	chaosInertAllocSlack = 16
	chaosN               = 12 // session-sweep instance size: small, so 200+ scenarios stay fast
	// chaosCertify = n makes the semiring spot-checks exhaustive (every
	// entry of every row re-derived — a corrupted min-plus or Boolean
	// product cannot slip past a partial sample) and gives ring products a
	// ≤ 2⁻¹² Freivalds false-accept; the draw is seed-derived, so a
	// campaign that passes once passes identically on every replay.
	chaosCertify = chaosN
)

// chaosScenario is one seeded fault configuration on one engine/transport/
// algebra cell of the sweep.
type chaosScenario struct {
	id     string
	engine string
	wire   bool
	op     string // matmul | bool | distance
	plan   cc.FaultPlan
}

type chaosReport struct {
	Experiment string `json:"experiment"`
	Note       string `json:"note"`
	Session    struct {
		Scenarios int `json:"scenarios"`
		Clean     int `json:"clean"`
		Recovered int `json:"recovered"`
		Typed     int `json:"typed_failures"`
		Retries   int `json:"extra_attempts"`
	} `json:"session_sweep"`
	Serve struct {
		Requests  int   `json:"requests"`
		Poisoned  int   `json:"poison_requests"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed_typed"`
		Discards  int64 `json:"sessions_discarded"`
	} `json:"serve_wave"`
	Overhead []chaosOverheadRow `json:"disarmed_overhead"`
}

// chaosOverheadRow compares one disarmed hot-path configuration against
// the committed matmul baseline and against its own armed-but-inert twin.
type chaosOverheadRow struct {
	Kind   string `json:"kind"`
	N      int    `json:"n"`
	Rounds int64  `json:"rounds"`
	Words  int64  `json:"words"`
	// AllocsOp is the disarmed measurement; BaseAllocsOp the committed
	// baseline it is gated against; InertAllocsOp the armed-but-inert
	// path's, gated against AllocsOp + chaosInertAllocSlack.
	AllocsOp      uint64 `json:"allocs_op"`
	BaseAllocsOp  uint64 `json:"base_allocs_op"`
	InertAllocsOp uint64 `json:"inert_allocs_op"`
	// NsRatioVsBase is disarmed ns/op over the committed baseline's —
	// recorded for the trajectory, not gated (hardware varies).
	NsRatioVsBase float64 `json:"ns_ratio_vs_base"`
	// ArmedInertRatio is armed-but-inert ns/op over disarmed ns/op,
	// interleaved in the same process: the cost of the fault plane's
	// per-send/per-flush checks when a (no-op) plan is armed. Recorded,
	// not gated — it sits at 1.0 and scheduler noise swamps any tolerance
	// tight enough to mean something; the deterministic twin gates
	// (schedule and allocs) carry the regression signal.
	ArmedInertRatio float64 `json:"armed_inert_ratio"`
}

// chaosMatrix enumerates the session sweep: engines × transports ×
// algebras × fault kinds × seeds. The fast engine has no min-plus cell
// (min-plus is not a ring).
func chaosMatrix() []chaosScenario {
	kinds := []struct {
		name string
		plan func(seed uint64) cc.FaultPlan
	}{
		{"corrupt", func(s uint64) cc.FaultPlan { return cc.FaultPlan{Seed: s, CorruptProb: 0.05, MaxFaults: 4} }},
		{"drop", func(s uint64) cc.FaultPlan { return cc.FaultPlan{Seed: s, DropProb: 0.05, MaxFaults: 4} }},
		{"duplicate", func(s uint64) cc.FaultPlan { return cc.FaultPlan{Seed: s, DupProb: 0.05, MaxFaults: 4} }},
		{"straggle", func(s uint64) cc.FaultPlan { return cc.FaultPlan{Seed: s, StraggleProb: 0.3, StraggleSkew: 2} }},
		{"crash", func(s uint64) cc.FaultPlan { return cc.FaultPlan{Seed: s, CrashAtRound: 1, CrashNode: int(s % chaosN)} }},
		{"storm", func(s uint64) cc.FaultPlan {
			return cc.FaultPlan{Seed: s, CorruptProb: 0.02, DropProb: 0.02, DupProb: 0.02, StraggleProb: 0.1, MaxFaults: 6}
		}},
	}
	cells := []struct {
		engine string
		ops    []string
	}{
		{"naive", []string{"matmul", "bool", "distance"}},
		{"semiring3d", []string{"matmul", "bool", "distance"}},
		{"fast", []string{"matmul", "bool"}},
	}
	var out []chaosScenario
	for _, cell := range cells {
		for _, wire := range []bool{false, true} {
			for _, op := range cell.ops {
				for _, k := range kinds {
					for seed := uint64(1); seed <= 2; seed++ {
						transport := "direct"
						if wire {
							transport = "wire"
						}
						out = append(out, chaosScenario{
							id:     fmt.Sprintf("%s/%s/%s/%s/seed=%d", cell.engine, transport, op, k.name, seed),
							engine: cell.engine,
							wire:   wire,
							op:     op,
							plan:   k.plan(seed*1000 + uint64(len(out))),
						})
					}
				}
			}
		}
	}
	return out
}

func chaosEngineOpt(engine string) cc.SessionOption {
	switch engine {
	case "naive":
		return cc.WithEngine(cc.Naive)
	case "semiring3d":
		return cc.WithEngine(cc.Semiring3D)
	case "fast":
		return cc.WithEngine(cc.Fast)
	}
	check(fmt.Errorf("chaos: unknown engine %q", engine))
	return nil
}

// chaosTyped reports whether an error is one of the fault plane's typed
// surfaces.
func chaosTypedErr(err error) bool {
	var fe *cc.FaultError
	var ce *cc.CertificationError
	return errors.As(err, &fe) || errors.As(err, &ce)
}

// refChaosProduct is the triple-loop reference for the sweep's three
// algebras, computed once per algebra over the shared operands.
func refChaosProduct(op string, a, b [][]int64) [][]int64 {
	n := len(a)
	out := make([][]int64, n)
	for i := range out {
		out[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			switch op {
			case "matmul":
				var s int64
				for k := 0; k < n; k++ {
					s += a[i][k] * b[k][j]
				}
				out[i][j] = s
			case "bool":
				var s int64
				for k := 0; k < n; k++ {
					if a[i][k] != 0 && b[k][j] != 0 {
						s = 1
						break
					}
				}
				out[i][j] = s
			case "distance":
				best := cc.Inf
				for k := 0; k < n; k++ {
					if cc.IsInf(a[i][k]) || cc.IsInf(b[k][j]) {
						continue
					}
					if d := a[i][k] + b[k][j]; d < best {
						best = d
					}
				}
				out[i][j] = best
			}
		}
	}
	return out
}

func chaosEq(a, b [][]int64) bool {
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// chaosSessionSweep runs the engines × transports × algebras × kinds ×
// seeds matrix, reusing one warm session per (engine, transport) so the
// sweep also exercises arm/disarm hygiene across consecutive faulted,
// crashed, and clean operations on the same network.
func chaosSessionSweep(rep *chaosReport) {
	scenarios := chaosMatrix()
	boolify := func(m [][]int64) [][]int64 {
		out := make([][]int64, len(m))
		for i, row := range m {
			out[i] = make([]int64, len(row))
			for j, v := range row {
				out[i][j] = v % 2
			}
		}
		return out
	}
	a, b := randSquare(chaosN, 81), randSquare(chaosN, 82)
	ab, bb := boolify(a), boolify(b)
	want := map[string][][]int64{
		"matmul":   refChaosProduct("matmul", a, b),
		"bool":     refChaosProduct("bool", ab, bb),
		"distance": refChaosProduct("distance", a, b),
	}

	sessions := map[string]*cc.Clique{}
	sessionFor := func(sc chaosScenario) *cc.Clique {
		key := fmt.Sprintf("%s/%v", sc.engine, sc.wire)
		if s, ok := sessions[key]; ok {
			return s
		}
		opts := []cc.SessionOption{chaosEngineOpt(sc.engine)}
		if sc.wire {
			opts = append(opts, cc.WithWireTransport())
		}
		s, err := cc.NewClique(chaosN, opts...)
		check(err)
		sessions[key] = s
		return s
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()

	for _, sc := range scenarios {
		sess := sessionFor(sc)
		opts := []cc.CallOption{cc.WithFaultInjection(sc.plan), cc.WithCertification(chaosCertify)}
		var prod [][]int64
		var stats cc.Stats
		var err error
		switch sc.op {
		case "matmul":
			prod, stats, err = sess.MatMul(a, b, opts...)
		case "bool":
			prod, stats, err = sess.MatMulBool(ab, bb, opts...)
		case "distance":
			prod, stats, err = sess.DistanceProduct(a, b, opts...)
		}
		switch {
		case err != nil:
			if !chaosTypedErr(err) {
				check(fmt.Errorf("chaos: %s: untyped failure: %v", sc.id, err))
			}
			rep.Session.Typed++
		case !chaosEq(prod, want[sc.op]):
			check(fmt.Errorf("chaos: %s: silently wrong product (faults fired: %d, certified: %v)",
				sc.id, stats.Faults.Fired(), stats.Certified))
		case !stats.Certified:
			check(fmt.Errorf("chaos: %s: success without certification", sc.id))
		case stats.Faults.Corrupted+stats.Faults.Dropped+stats.Faults.Duplicated > 0:
			rep.Session.Recovered++
		default:
			rep.Session.Clean++
		}
		if stats.Attempts > 1 {
			rep.Session.Retries += stats.Attempts - 1
		}
	}
	rep.Session.Scenarios = len(scenarios)
}

// chaosServeWave drives a faulted request mix — clean, chaos-certified,
// and session-poisoning — through the service plane and audits the
// crash-safety ledger.
func chaosServeWave(rep *chaosReport) {
	s := serve.New(serve.Config{MaxBatch: 4, MaxWait: 2 * time.Millisecond})
	const waveN, waveReqs = 10, 48
	a, b := randSquare(waveN, 91), randSquare(waveN, 92)
	want := refChaosProduct("matmul", a, b)

	var wg sync.WaitGroup
	results := make([]serve.Result, waveReqs)
	poisons := 0
	for i := 0; i < waveReqs; i++ {
		req := serve.Request{Tenant: fmt.Sprintf("t%d", i%4), Op: serve.OpMatMul, A: a, B: b}
		switch {
		case i%8 == 5:
			// A buggy run: untyped panic mid-operation, poisoning its session.
			req.Fault = &cc.FaultPlan{Seed: uint64(100 + i), PanicAtFlush: 1}
			poisons++
		case i%3 == 0:
			req.Fault = &cc.FaultPlan{Seed: uint64(200 + i), CorruptProb: 0.02, DropProb: 0.01, MaxFaults: 4}
			req.Certify = chaosCertify
		}
		wg.Add(1)
		go func(i int, req serve.Request) {
			defer wg.Done()
			results[i] = s.Do(context.Background(), req)
		}(i, req)
	}
	wg.Wait()

	for i, res := range results {
		if res.Err != nil {
			var spe *serve.SessionPanicError
			if !chaosTypedErr(res.Err) && !errors.As(res.Err, &spe) {
				check(fmt.Errorf("chaos: serve request %d: untyped failure: %v", i, res.Err))
			}
			rep.Serve.Failed++
			continue
		}
		if !chaosEq(res.Matrix, want) {
			check(fmt.Errorf("chaos: serve request %d: silently wrong product", i))
		}
		rep.Serve.Completed++
	}

	var admitted, completed, failed, expired int64
	for _, ts := range s.Tenants() {
		admitted += ts.Admitted
		completed += ts.Completed
		failed += ts.Failed
		expired += ts.Expired
	}
	if admitted != int64(waveReqs) || completed+failed+expired != admitted {
		check(fmt.Errorf("chaos: serve wave lost admitted requests: admitted %d, completed %d, failed %d, expired %d",
			admitted, completed, failed, expired))
	}
	pool := s.Pool()
	if pool.Discards < int64(poisons) {
		check(fmt.Errorf("chaos: %d poison requests but only %d sessions discarded", poisons, pool.Discards))
	}
	if int64(pool.Idle+pool.InUse) != pool.Misses-pool.Discards {
		check(fmt.Errorf("chaos: a poisoned session was re-pooled: %+v", pool))
	}
	check(s.Shutdown(context.Background()))
	rep.Serve.Requests = waveReqs
	rep.Serve.Poisoned = poisons
	rep.Serve.Discards = pool.Discards
}

// chaosOverhead gates the disarmed clean path against the committed
// matmul baseline: identical rounds and words (the fault plane must not
// perturb the schedule when nothing is armed), allocs/op within
// chaosOverheadTol, and the armed-but-inert twin bounded by the same
// schedule plus chaosInertAllocSlack allocs/op.
func chaosOverhead(rep *chaosReport) {
	raw, err := os.ReadFile(benchBaselinePath)
	if err != nil {
		fmt.Printf("   no %s; disarmed-overhead gate skipped\n", benchBaselinePath)
		return
	}
	var committed benchFile
	check(json.Unmarshal(raw, &committed))
	if committed.After == nil {
		fmt.Printf("   %s has no baseline snapshot; disarmed-overhead gate skipped\n", benchBaselinePath)
		return
	}

	mm := func(s *cc.Clique, a, b [][]int64) (cc.Stats, error) {
		_, st, err := s.MatMul(a, b)
		return st, err
	}
	dp := func(s *cc.Clique, a, b [][]int64) (cc.Stats, error) {
		_, st, err := s.DistanceProduct(a, b)
		return st, err
	}
	// The inert plan never injects (every probability zero), so arming it
	// prices exactly the fault plane's per-send and per-flush checks.
	inert := cc.FaultPlan{Seed: 1}
	kinds := []struct {
		kind string
		base map[string]benchProductStats
		mul  func(s *cc.Clique, a, b [][]int64) (cc.Stats, error)
		inrt func(s *cc.Clique, a, b [][]int64) (cc.Stats, error)
	}{
		{"matmul", committed.After.SessionMatMul, mm,
			func(s *cc.Clique, a, b [][]int64) (cc.Stats, error) {
				_, st, err := s.MatMul(a, b, cc.WithFaultInjection(inert))
				return st, err
			}},
		{"distance-product", committed.After.SessionDistanceProduct, dp,
			func(s *cc.Clique, a, b [][]int64) (cc.Stats, error) {
				_, st, err := s.DistanceProduct(a, b, cc.WithFaultInjection(inert))
				return st, err
			}},
	}
	var fails []string
	for _, k := range kinds {
		for _, n := range []int{27, 64, 100} {
			base, ok := k.base[fmt.Sprintf("%d", n)]
			if !ok {
				continue
			}
			disarmed := measureSession(n, k.mul)
			armedInert := measureSession(n, k.inrt)
			row := chaosOverheadRow{
				Kind: k.kind, N: n,
				Rounds: disarmed.Rounds, Words: disarmed.Words,
				AllocsOp: disarmed.AllocsOp, BaseAllocsOp: base.AllocsOp,
				InertAllocsOp:   armedInert.AllocsOp,
				NsRatioVsBase:   disarmed.NsOp / base.NsOp,
				ArmedInertRatio: measureInertRatio(n, k.mul, k.inrt),
			}
			rep.Overhead = append(rep.Overhead, row)
			if disarmed.Rounds != base.Rounds || disarmed.Words != base.Words {
				fails = append(fails, fmt.Sprintf("%s n=%d: disarmed schedule changed: %d rounds / %d words, baseline %d / %d",
					k.kind, n, disarmed.Rounds, disarmed.Words, base.Rounds, base.Words))
			}
			if float64(disarmed.AllocsOp) > float64(base.AllocsOp)*(1+chaosOverheadTol)+64 {
				fails = append(fails, fmt.Sprintf("%s n=%d: disarmed allocs/op %d > baseline %d (+%.0f%%)",
					k.kind, n, disarmed.AllocsOp, base.AllocsOp, chaosOverheadTol*100))
			}
			if armedInert.Rounds != disarmed.Rounds || armedInert.Words != disarmed.Words {
				fails = append(fails, fmt.Sprintf("%s n=%d: an inert plan perturbed the schedule: %d rounds / %d words armed, %d / %d disarmed",
					k.kind, n, armedInert.Rounds, armedInert.Words, disarmed.Rounds, disarmed.Words))
			}
			if armedInert.AllocsOp > disarmed.AllocsOp+chaosInertAllocSlack {
				fails = append(fails, fmt.Sprintf("%s n=%d: armed-inert path allocates %d/op vs %d disarmed (slack %d)",
					k.kind, n, armedInert.AllocsOp, disarmed.AllocsOp, chaosInertAllocSlack))
			}
		}
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "   OVERHEAD:", f)
		}
		check(fmt.Errorf("chaos: %d disarmed-overhead violation(s) versus %s", len(fails), benchBaselinePath))
	}
}

// measureInertRatio times the disarmed and armed-but-inert paths
// interleaved on the same session — the measureTransport recipe: slow
// machine phases hit both sides alike, per-side minima filter one-sided
// noise, and their quotient is the one hardware-relative wall-clock
// figure stable enough to gate.
func measureInertRatio(n int, disarmed, inrt func(s *cc.Clique, a, b [][]int64) (cc.Stats, error)) float64 {
	a, b := randSquare(n, 71), randSquare(n, 72)
	runtime.GC()
	s, err := cc.NewClique(n)
	check(err)
	defer s.Close()
	for i := 0; i < benchWarmups; i++ {
		_, err = disarmed(s, a, b)
		check(err)
		_, err = inrt(s, a, b)
		check(err)
	}
	time1 := func(mul func(s *cc.Clique, a, b [][]int64) (cc.Stats, error)) float64 {
		t0 := time.Now()
		for i := 0; i < 2*benchOps; i++ {
			_, err := mul(s, a, b)
			check(err)
		}
		return float64(time.Since(t0).Nanoseconds())
	}
	var dns, ins float64
	for rep := 0; rep < benchReps; rep++ {
		d, i := time1(disarmed), time1(inrt)
		if rep == 0 || d < dns {
			dns = d
		}
		if rep == 0 || i < ins {
			ins = i
		}
	}
	return ins / dns
}

// chaosBench is the `ccbench chaos` experiment entry point.
func chaosBench() {
	// Zero hangs is a gate, not a hope: if any scenario wedges, the
	// watchdog fails the whole campaign loudly instead of letting CI time
	// out 50 minutes later.
	watchdog := time.AfterFunc(chaosWatchdog, func() {
		fmt.Fprintln(os.Stderr, "chaos: campaign watchdog fired — a scenario hung")
		os.Exit(1)
	})
	defer watchdog.Stop()

	rep := &chaosReport{
		Experiment: "fault-plane-chaos",
		Note: "seeded fault campaign: engines × transports × algebras × fault kinds, plus a poisoned serve wave; " +
			"gated on typed-or-correct answers, zero hangs, zero lost admitted requests, no re-pooled poisoned " +
			"sessions, and disarmed clean-path overhead (schedule identical to baseline, allocs within 5%, armed-inert " +
			"within a constant alloc slack)",
	}
	chaosSessionSweep(rep)
	fmt.Printf("   session sweep: %d scenarios — %d clean, %d recovered via certification, %d typed failures, %d extra attempts\n",
		rep.Session.Scenarios, rep.Session.Clean, rep.Session.Recovered, rep.Session.Typed, rep.Session.Retries)
	if rep.Session.Recovered == 0 {
		check(fmt.Errorf("chaos: no scenario recovered through certification; the sweep is not exercising the retry path"))
	}
	chaosServeWave(rep)
	fmt.Printf("   serve wave: %d requests (%d poisoning) — %d completed, %d typed failures, %d sessions discarded\n",
		rep.Serve.Requests, rep.Serve.Poisoned, rep.Serve.Completed, rep.Serve.Failed, rep.Serve.Discards)
	chaosOverhead(rep)
	for _, row := range rep.Overhead {
		fmt.Printf("   disarmed %s n=%d: schedule unchanged (%d rounds / %d words), allocs %d vs %d baseline, armed-inert %.1f%%\n",
			row.Kind, row.N, row.Rounds, row.Words, row.AllocsOp, row.BaseAllocsOp, (row.ArmedInertRatio-1)*100)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	check(err)
	raw = append(raw, '\n')
	check(os.WriteFile(chaosBaselinePath, raw, 0o644))
	fmt.Printf("   wrote %s\n", chaosBaselinePath)
	total := rep.Session.Scenarios + rep.Serve.Requests
	fmt.Printf("   campaign: %d seeded scenarios, all typed-or-correct, zero hangs, zero lost requests\n", total)
}
