package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/serve"
)

// The serve experiment load-tests the multi-tenant service plane: it fires
// thousands of concurrent mixed queries (ring and boolean products,
// min-plus products, APSP, triangle counts, sparse squares) from simulated
// tenants at an in-process serve.Server and gates
//
//   - correctness: every response must match a direct single-session call
//     on the same inputs (hard);
//   - zero lost requests: every admitted request is answered, including
//     through the graceful-shutdown wave (hard);
//   - warm-pool hit-rate ≥ 90% at steady state (hard);
//   - tail latency (normalised p99/p50, machine-independent) and
//     allocations per request within benchTolerance of the committed
//     BENCH_serve.json.
//
// Raw p50/p99 wall-clock numbers are recorded for context but not gated —
// CI machines differ; the normalised tail and the allocation count are the
// stable signals.

const serveBaselinePath = "BENCH_serve.json"

type serveMetrics struct {
	Requests    int     `json:"requests"`
	Tenants     int     `json:"tenants"`
	Sizes       []int   `json:"sizes"`
	Completed   int64   `json:"completed"`
	Retried     int64   `json:"retried"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P99OverP50  float64 `json:"p99_over_p50"`
	AllocsPerRq float64 `json:"allocs_per_request"`
	PoolHitRate float64 `json:"pool_hit_rate"`
	PoolBuilt   int64   `json:"pool_sessions_built"`
	Batches     int64   `json:"batches"`
	AvgBatch    float64 `json:"avg_batch"`
	DrainSent   int     `json:"drain_submitted"`
	DrainServed int64   `json:"drain_served"`
	DrainTurned int64   `json:"drain_rejected"`
	LostAdmit   int64   `json:"lost_admitted"`
}

type serveBenchFile struct {
	Experiment string       `json:"experiment"`
	Note       string       `json:"note"`
	Results    serveMetrics `json:"results"`
}

// serveLCG is the bench's deterministic input generator.
type serveLCG uint64

func (r *serveLCG) next() uint64 {
	*r = *r*2862933555777941757 + 3037000493
	return uint64(*r)
}

// serveInputs holds one size's pregenerated operands and their reference
// results from a direct session.
type serveInputs struct {
	intA, intB   [][]int64 // small non-negative ring entries
	wA, wB       [][]int64 // min-plus operands with Inf holes
	adj          [][]int64 // symmetric loop-free 0/1 adjacency
	refMul       [][]int64
	refBool      [][]int64
	refDist      [][]int64
	refAPSP      [][]int64
	refSquare    [][]int64
	refTriangles int64
}

func serveGenInputs(n int, rng *serveLCG) *serveInputs {
	mat := func(mod uint64) [][]int64 {
		m := make([][]int64, n)
		for i := range m {
			m[i] = make([]int64, n)
			for j := range m[i] {
				m[i][j] = int64(rng.next() % mod)
			}
		}
		return m
	}
	in := &serveInputs{intA: mat(7), intB: mat(7)}
	sparseW := func() [][]int64 {
		m := make([][]int64, n)
		for i := range m {
			m[i] = make([]int64, n)
			for j := range m[i] {
				if rng.next()%4 == 0 {
					m[i][j] = int64(rng.next() % 32)
				} else {
					m[i][j] = cc.Inf
				}
			}
		}
		return m
	}
	in.wA, in.wB = sparseW(), sparseW()
	in.adj = make([][]int64, n)
	for i := range in.adj {
		in.adj[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.next()%4 == 0 {
				in.adj[i][j], in.adj[j][i] = 1, 1
			}
		}
	}
	return in
}

// serveReference fills in the reference results with direct, unserved
// session calls — the bench then checks the service plane returns exactly
// these through every batching and pooling path.
func (in *serveInputs) serveReference(n int) {
	sess, err := cc.NewClique(n)
	check(err)
	defer sess.Close()
	var e error
	in.refMul, _, e = sess.MatMul(in.intA, in.intB)
	check(e)
	in.refBool, _, e = sess.MatMulBool(in.adj, in.adj)
	check(e)
	in.refDist, _, e = sess.DistanceProduct(in.wA, in.wB)
	check(e)
	w := cc.NewWeighted(n, true)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && !cc.IsInf(in.wA[i][j]) && in.wA[i][j] >= 0 {
				w.SetEdge(i, j, in.wA[i][j])
			}
		}
	}
	apsp, _, e := sess.APSP(w)
	check(e)
	in.refAPSP = apsp.Dist
	g := cc.NewGraph(n, false)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if in.adj[i][j] != 0 {
				g.AddEdge(i, j)
			}
		}
	}
	in.refTriangles, _, e = sess.CountTriangles(g)
	check(e)
	in.refSquare, _, e = sess.SquareAdjacencySparse(g)
	check(e)
}

// request builds one served request for op together with its expected
// matrix (or count) from the references above. APSP reuses wA: it is
// generated with non-negative finite weights and Inf holes, exactly what
// the service validates and what the reference graph was built from.
func (in *serveInputs) request(tenant string, op serve.Op) (serve.Request, [][]int64, int64) {
	switch op {
	case serve.OpMatMul:
		return serve.Request{Tenant: tenant, Op: op, A: in.intA, B: in.intB}, in.refMul, 0
	case serve.OpMatMulBool:
		return serve.Request{Tenant: tenant, Op: op, A: in.adj, B: in.adj}, in.refBool, 0
	case serve.OpDistanceProduct:
		return serve.Request{Tenant: tenant, Op: op, A: in.wA, B: in.wB}, in.refDist, 0
	case serve.OpAPSP:
		return serve.Request{Tenant: tenant, Op: op, A: in.wA}, in.refAPSP, 0
	case serve.OpTriangles:
		return serve.Request{Tenant: tenant, Op: op, A: in.adj}, nil, in.refTriangles
	default: // sparse-square
		return serve.Request{Tenant: tenant, Op: op, A: in.adj}, in.refSquare, 0
	}
}

func serveMatEq(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// serveFire submits one request with bounded retries under backpressure.
// It returns the end-to-end latency of the final (admitted) attempt.
func serveFire(srv *serve.Server, req serve.Request, retried *int64) (serve.Result, time.Duration) {
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		res := srv.Do(context.Background(), req)
		var overload *serve.OverloadError
		if errors.As(res.Err, &overload) && attempt < 10 {
			atomic.AddInt64(retried, 1)
			pause := overload.RetryAfter
			if pause > 20*time.Millisecond {
				pause = 20 * time.Millisecond
			}
			time.Sleep(pause)
			continue
		}
		return res, time.Since(t0)
	}
}

func serveBench() {
	sizes := []int{12, 16, 24}
	tenants := []string{"acme", "globex", "initech", "umbrella", "wayne", "stark"}
	opsMix := []serve.Op{
		serve.OpMatMul, serve.OpMatMul, serve.OpMatMulBool,
		serve.OpDistanceProduct, serve.OpDistanceProduct,
		serve.OpAPSP, serve.OpTriangles, serve.OpSparseSquare,
	}
	const total = 2000
	const drainSent = 400

	fmt.Printf("   generating inputs and references for sizes %v ...\n", sizes)
	rng := serveLCG(0x5eed_c11e)
	inputs := map[int]*serveInputs{}
	for _, n := range sizes {
		inputs[n] = serveGenInputs(n, &rng)
		inputs[n].serveReference(n)
	}

	srv := serve.New(serve.Config{
		QueueCap: 512,
		MaxBatch: 16,
		MaxWait:  2 * time.Millisecond,
	})

	// Warm the pool and the dispatchers: one request per (size, op).
	for _, n := range sizes {
		for _, op := range []serve.Op{serve.OpMatMul, serve.OpMatMulBool, serve.OpDistanceProduct, serve.OpAPSP, serve.OpTriangles, serve.OpSparseSquare} {
			req, _, _ := inputs[n].request(tenants[0], op)
			if res := srv.Do(context.Background(), req); res.Err != nil {
				check(fmt.Errorf("serve warmup %s/n=%d: %w", op, n, res.Err))
			}
		}
	}
	warm := srv.Pool()

	// The measured wave runs waves times; the recorded tail ratio is the
	// median across waves (single-shot p99 is too scheduler-noisy to
	// gate), allocations the minimum (GC-quiet run).
	const waves = 5
	var retried, mismatches, failed int64
	runWave := func() (p50, p99 time.Duration, allocsPerReq float64) {
		lat := make([]time.Duration, total)
		var wg sync.WaitGroup
		startc := make(chan struct{})
		var mem0, mem1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&mem0)
		for i := 0; i < total; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := sizes[i%len(sizes)]
				op := opsMix[i%len(opsMix)]
				req, wantMat, wantCount := inputs[n].request(tenants[i%len(tenants)], op)
				<-startc
				res, d := serveFire(srv, req, &retried)
				lat[i] = d
				if res.Err != nil {
					atomic.AddInt64(&failed, 1)
					return
				}
				ok := true
				if wantMat != nil {
					ok = serveMatEq(res.Matrix, wantMat)
				} else {
					ok = res.Count == wantCount
				}
				if !ok {
					atomic.AddInt64(&mismatches, 1)
				}
			}(i)
		}
		close(startc)
		wg.Wait()
		runtime.ReadMemStats(&mem1)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[total/2], lat[total*99/100], float64(mem1.Mallocs-mem0.Mallocs) / float64(total)
	}

	fmt.Printf("   firing %d concurrent queries across %d tenants, %d waves ...\n", total, len(tenants), waves)
	var p50s, p99s []time.Duration
	var ratios, allocRuns []float64
	for w := 0; w < waves; w++ {
		p50, p99, allocs := runWave()
		p50s, p99s = append(p50s, p50), append(p99s, p99)
		ratios = append(ratios, float64(p99)/float64(p50))
		allocRuns = append(allocRuns, allocs)
	}
	sort.Slice(ratios, func(i, j int) bool { return ratios[i] < ratios[j] })
	sort.Float64s(allocRuns)
	medianRatio := ratios[waves/2]
	allocsPerReq := allocRuns[0]
	sort.Slice(p50s, func(i, j int) bool { return p50s[i] < p50s[j] })
	sort.Slice(p99s, func(i, j int) bool { return p99s[i] < p99s[j] })
	p50, p99 := p50s[waves/2], p99s[waves/2]

	// Graceful-shutdown wave: submit another burst and drain mid-flight.
	fmt.Printf("   graceful-shutdown wave: %d queries racing Shutdown ...\n", drainSent)
	var drainServed, drainTurned, drainLost int64
	var dwg sync.WaitGroup
	for i := 0; i < drainSent; i++ {
		dwg.Add(1)
		go func(i int) {
			defer dwg.Done()
			n := sizes[i%len(sizes)]
			req, _, _ := inputs[n].request(tenants[i%len(tenants)], opsMix[i%len(opsMix)])
			res := srv.Do(context.Background(), req)
			var overload *serve.OverloadError
			switch {
			case res.Err == nil:
				atomic.AddInt64(&drainServed, 1)
			case errors.Is(res.Err, serve.ErrDraining) || errors.As(res.Err, &overload):
				atomic.AddInt64(&drainTurned, 1)
			default:
				atomic.AddInt64(&drainLost, 1)
			}
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	check(srv.Shutdown(drainCtx))
	dwg.Wait()

	var admitted, completed, terminalFailed, expired int64
	for _, ts := range srv.Tenants() {
		admitted += ts.Admitted
		completed += ts.Completed
		terminalFailed += ts.Failed
		expired += ts.Expired
	}
	lostAdmitted := admitted - completed - terminalFailed - expired

	pool := srv.Pool()
	batches := pool.Hits + pool.Misses
	cur := serveMetrics{
		Requests:    total,
		Tenants:     len(tenants),
		Sizes:       sizes,
		Completed:   completed,
		Retried:     retried,
		P50Ms:       float64(p50.Microseconds()) / 1000,
		P99Ms:       float64(p99.Microseconds()) / 1000,
		P99OverP50:  medianRatio,
		AllocsPerRq: allocsPerReq,
		PoolHitRate: pool.HitRate(),
		PoolBuilt:   pool.Misses,
		Batches:     batches,
		AvgBatch:    float64(completed) / float64(batches),
		DrainSent:   drainSent,
		DrainServed: drainServed,
		DrainTurned: drainTurned,
		LostAdmit:   lostAdmitted,
	}

	// Hard gates: correctness, completeness, warm-pool effectiveness.
	var fails []string
	if mismatches > 0 {
		fails = append(fails, fmt.Sprintf("%d responses differ from direct session results", mismatches))
	}
	if failed > 0 {
		fails = append(fails, fmt.Sprintf("%d load-wave requests failed outright", failed))
	}
	if drainLost > 0 {
		fails = append(fails, fmt.Sprintf("%d shutdown-wave requests died with unexpected errors", drainLost))
	}
	if lostAdmitted != 0 || terminalFailed != 0 || expired != 0 {
		fails = append(fails, fmt.Sprintf("admitted-request accounting: admitted %d, completed %d, failed %d, expired %d",
			admitted, completed, terminalFailed, expired))
	}
	if cur.PoolHitRate < 0.90 {
		fails = append(fails, fmt.Sprintf("pool hit-rate %.3f below the 0.90 floor (%d built, warm baseline %d)",
			cur.PoolHitRate, pool.Misses, warm.Misses))
	}

	// Soft gates versus the committed baseline: normalised tail latency
	// and allocations per request.
	var committed serveBenchFile
	gated := false
	if raw, err := os.ReadFile(serveBaselinePath); err == nil {
		check(json.Unmarshal(raw, &committed))
		gated = committed.Results.Requests > 0
	}
	if gated {
		b := committed.Results
		// The tail gate carries an absolute cushion on top of the relative
		// tolerance (like the alloc gates' +64): even the median-of-wave
		// p99/p50 jitters with machine load, while the regressions this
		// gate exists for — lost wakeups, MaxWait stalls, serialised
		// dispatch — move the ratio by whole multiples. (Batching and
		// pooling regressions are caught by the tight allocs/request and
		// hit-rate gates, which are load-independent.)
		if cur.P99OverP50 > b.P99OverP50*(1+benchTolerance)+3.0 {
			fails = append(fails, fmt.Sprintf("normalised p99 tail %.2f exceeds baseline %.2f by more than %.0f%% + 3.0",
				cur.P99OverP50, b.P99OverP50, benchTolerance*100))
		}
		if cur.AllocsPerRq > b.AllocsPerRq*(1+benchTolerance)+64 {
			fails = append(fails, fmt.Sprintf("allocs/request %.0f exceeds baseline %.0f by more than %.0f%%",
				cur.AllocsPerRq, b.AllocsPerRq, benchTolerance*100))
		}
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "   REGRESSION:", f)
		}
		check(fmt.Errorf("serve: %d service-plane regression(s)", len(fails)))
	}

	out := serveBenchFile{
		Experiment: "serve-load",
		Note: "2000 concurrent mixed queries (ring/bool/min-plus products, APSP, triangles, sparse square) from 6 " +
			"tenants against the in-process service plane, plus a 400-query graceful-shutdown wave; hard gates on " +
			"correctness vs direct sessions, zero lost admitted requests, and ≥90% warm-pool hit-rate; normalised " +
			"p99/p50 and allocs/request gated at ±10%",
		Results: cur,
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	check(err)
	raw = append(raw, '\n')
	check(os.WriteFile(serveBaselinePath, raw, 0o644))
	fmt.Printf("   wrote %s\n", serveBaselinePath)
	if gated {
		fmt.Printf("   no regression > %.0f%% versus committed baseline\n", benchTolerance*100)
	} else {
		fmt.Printf("   no committed baseline found at %s; snapshot recorded\n", serveBaselinePath)
	}
	fmt.Printf("   served %d+%d requests, %d retried under backpressure, 0 lost\n", completed-drainServed, drainServed, retried)
	fmt.Printf("   latency p50 %.2fms  p99 %.2fms  (p99/p50 %.2f)\n", cur.P50Ms, cur.P99Ms, cur.P99OverP50)
	fmt.Printf("   pool: hit-rate %.3f (%d sessions built), avg batch %.1f across %d batches\n",
		cur.PoolHitRate, cur.PoolBuilt, cur.AvgBatch, cur.Batches)
	fmt.Printf("   allocs/request %.0f\n", cur.AllocsPerRq)
}
