// Command ccrun runs one of the paper's algorithms on a graph from a file
// (or a generated one) on the simulated congested clique and reports the
// result together with the measured round cost.
//
// Usage:
//
//	ccrun -algo triangles -graph social.txt
//	ccrun -algo girth -gen gnp:64:0.3:7
//	ccrun -algo apsp -weighted -graph net.txt -from 0 -to 9
//	ccrun -algo c4detect -gen torus:8:8
//
// Graph files use the edge-list format of algclique.WriteGraph /
// WriteWeightedGraph. Algorithms: triangles, triangles-dolev, c4, c5, c6,
// c4detect, kcycle (with -k), girth, diameter, reach, sparsesquare,
// apsp, apsp-approx (with -delta), apsp-unweighted.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"

	cc "github.com/algebraic-clique/algclique"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccrun: ")
	var (
		algo       = flag.String("algo", "", "algorithm to run (see package doc)")
		graphPath  = flag.String("graph", "", "edge-list file ('-' for stdin)")
		gen        = flag.String("gen", "", "generate instead: gnp:<n>:<p>[:seed], torus:<r>:<c>, cycle:<n>, pa:<n>:<m>[:seed], petersen")
		weighted   = flag.Bool("weighted", false, "parse the file as a weighted edge list")
		engineName = flag.String("engine", "auto", "engine: auto, fast, 3d, naive")
		seed       = flag.Uint64("seed", 1, "seed for randomised components")
		colourings = flag.Int("colourings", 0, "colour-coding trials (0 = paper default)")
		k          = flag.Int("k", 5, "cycle length for -algo kcycle")
		delta      = flag.Float64("delta", 0.25, "rounding parameter for -algo apsp-approx")
		from       = flag.Int("from", -1, "print the route from this node (apsp)")
		to         = flag.Int("to", -1, "print the route to this node (apsp)")
	)
	flag.Parse()
	if *algo == "" {
		flag.Usage()
		os.Exit(2)
	}
	engine, err := parseEngine(*engineName)
	if err != nil {
		log.Fatal(err)
	}
	opts := []cc.CallOption{cc.WithSeed(*seed)}
	if *colourings > 0 {
		opts = append(opts, cc.WithColourings(*colourings))
	}

	var g *cc.Graph
	var wg *cc.Weighted
	switch {
	case *gen != "":
		g, err = generate(*gen)
		if err != nil {
			log.Fatal(err)
		}
		if *weighted {
			wg = cc.UnitWeights(g)
		}
	case *graphPath != "":
		f := os.Stdin
		if *graphPath != "-" {
			f, err = os.Open(*graphPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
		}
		if *weighted {
			wg, err = cc.ReadWeightedGraph(f)
		} else {
			g, err = cc.ReadGraph(f)
		}
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -graph or -gen")
	}
	var size int
	if g != nil {
		fmt.Printf("graph: %d nodes, %d edges, directed=%v\n", g.N(), g.EdgeCount(), g.Directed())
		size = g.N()
	} else {
		fmt.Printf("weighted graph: %d nodes, directed=%v, max weight %d\n", wg.N(), wg.Directed(), wg.MaxWeight())
		size = wg.N()
	}

	// One session serves the run: the engine is a session-scoped choice,
	// seeds and algorithm parameters are per call.
	sess, err := cc.NewClique(size, cc.WithEngine(engine))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	var stats cc.Stats
	switch *algo {
	case "triangles":
		var count int64
		count, stats, err = sess.CountTriangles(need(g), opts...)
		describe(err, stats, "triangles: %d", count)
	case "triangles-dolev":
		var count int64
		count, stats, err = sess.CountTrianglesDolev(need(g), opts...)
		describe(err, stats, "triangles (Dolev baseline): %d", count)
	case "c4":
		var count int64
		count, stats, err = sess.CountFourCycles(need(g), opts...)
		describe(err, stats, "4-cycles: %d", count)
	case "c5":
		var count int64
		count, stats, err = sess.CountFiveCycles(need(g), opts...)
		describe(err, stats, "5-cycles: %d", count)
	case "c6":
		var count int64
		count, stats, err = sess.CountSixCycles(need(g), opts...)
		describe(err, stats, "6-cycles: %d", count)
	case "c4detect":
		var found bool
		found, stats, err = sess.DetectFourCycle(need(g), opts...)
		describe(err, stats, "contains a 4-cycle: %v", found)
	case "kcycle":
		var found bool
		found, stats, err = sess.DetectCycle(need(g), *k, opts...)
		describe(err, stats, "contains a %d-cycle: %v", *k, found)
	case "girth":
		var val int
		var ok bool
		val, ok, stats, err = sess.Girth(need(g), opts...)
		if ok {
			describe(err, stats, "girth: %d", val)
		} else {
			describe(err, stats, "acyclic")
		}
	case "diameter":
		var diam int64
		var connected bool
		diam, connected, stats, err = sess.Diameter(need(g), opts...)
		describe(err, stats, "diameter: %d (connected: %v)", diam, connected)
	case "reach":
		var m [][]int64
		m, stats, err = sess.TransitiveClosure(need(g), opts...)
		var pairs int64
		for _, row := range m {
			for _, x := range row {
				pairs += x
			}
		}
		describe(err, stats, "reachable ordered pairs (incl. self): %d", pairs)
	case "sparsesquare":
		var sq [][]int64
		sq, stats, err = sess.SquareAdjacencySparse(need(g), opts...)
		var walks int64
		for _, row := range sq {
			for _, x := range row {
				walks += x
			}
		}
		describe(err, stats, "2-walks: %d", walks)
	case "apsp":
		var res *cc.APSPResult
		res, stats, err = sess.APSP(needW(wg), opts...)
		describe(err, stats, "exact APSP with routing tables computed")
		if err == nil && *from >= 0 && *to >= 0 {
			fmt.Printf("route %d → %d: distance %d, path %v\n",
				*from, *to, res.Dist[*from][*to], res.Path(*from, *to))
		}
	case "apsp-approx":
		var stretch float64
		_, stretch, stats, err = sess.APSPApprox(needW(wg), append(opts, cc.WithDelta(*delta))...)
		describe(err, stats, "approximate APSP, stretch bound %.3f", stretch)
	case "apsp-unweighted":
		_, stats, err = sess.APSPUnweighted(need(g), opts...)
		describe(err, stats, "unweighted APSP computed")
	default:
		log.Fatalf("unknown -algo %q", *algo)
	}
}

func need(g *cc.Graph) *cc.Graph {
	if g == nil {
		log.Fatal("this algorithm needs an unweighted graph (drop -weighted)")
	}
	return g
}

func needW(g *cc.Weighted) *cc.Weighted {
	if g == nil {
		log.Fatal("this algorithm needs -weighted (or a weighted file)")
	}
	return g
}

func describe(err error, stats cc.Stats, format string, args ...any) {
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(format+"\n", args...)
	fmt.Printf("cost: %d rounds, %d words on an n=%d clique", stats.Rounds, stats.Words, stats.N)
	if stats.PaddedFrom != 0 {
		fmt.Printf(" (padded from %d)", stats.PaddedFrom)
	}
	fmt.Println()
	for _, p := range stats.Phases {
		fmt.Printf("  %-24s %6d rounds %12d words\n", p.Name, p.Rounds, p.Words)
	}
}

func parseEngine(s string) (cc.Engine, error) {
	switch s {
	case "auto":
		return cc.Auto, nil
	case "fast":
		return cc.Fast, nil
	case "3d":
		return cc.Semiring3D, nil
	case "naive":
		return cc.Naive, nil
	default:
		return cc.Auto, fmt.Errorf("unknown engine %q (auto, fast, 3d, naive)", s)
	}
}

func generate(spec string) (*cc.Graph, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("generator %q: missing argument %d", spec, i)
		}
		return strconv.Atoi(parts[i])
	}
	switch parts[0] {
	case "gnp":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		p, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("generator %q: bad probability", spec)
		}
		seed := uint64(1)
		if len(parts) > 3 {
			s, err := strconv.ParseUint(parts[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("generator %q: bad seed", spec)
			}
			seed = s
		}
		return cc.GNP(n, p, false, seed), nil
	case "torus":
		r, err := atoi(1)
		if err != nil {
			return nil, err
		}
		c, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return cc.Torus(r, c), nil
	case "cycle":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		return cc.Cycle(n, false), nil
	case "pa":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		m, err := atoi(2)
		if err != nil {
			return nil, err
		}
		seed := uint64(rand.Uint64())
		if len(parts) > 3 {
			s, err := strconv.ParseUint(parts[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("generator %q: bad seed", spec)
			}
			seed = s
		}
		return cc.PreferentialAttachment(n, m, seed), nil
	case "petersen":
		return cc.Petersen(), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}
