// Command ccserve runs the multi-tenant service plane over warm clique
// sessions: a JSON-over-HTTP API multiplexing many callers over a budgeted
// pool of simulator sessions, with per-(size, op) admission queues,
// request batching, and per-tenant accounting.
//
// Usage:
//
//	ccserve [-addr :8035] [-budget-mb 256] [-queue-cap 64]
//	        [-tenant-queue-cap 32] [-max-batch 16] [-max-wait 2ms]
//	        [-min-size 2] [-max-size 512] [-workers N]
//
// Endpoints:
//
//	POST /v1/{op}   op ∈ matmul, matmul-bool, distance-product,
//	                apsp, triangles, sparse-square
//	GET  /stats     pool, queue, and tenant ledger snapshot
//	GET  /healthz   200 while serving, 503 while draining
//
// SIGINT/SIGTERM drain gracefully: admission seals, every admitted
// request is answered, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/serve"
)

func main() {
	var (
		addr           = flag.String("addr", ":8035", "listen address")
		budgetMB       = flag.Int64("budget-mb", 256, "session pool memory budget in MiB (0 = unbounded)")
		queueCap       = flag.Int("queue-cap", 64, "per-(size, op) admission queue capacity")
		tenantQueueCap = flag.Int("tenant-queue-cap", 0, "per-tenant share of each queue (0 = half the queue)")
		maxBatch       = flag.Int("max-batch", 16, "max requests coalesced into one session batch")
		maxWait        = flag.Duration("max-wait", 2*time.Millisecond, "max time the oldest request waits for co-batchers")
		minSize        = flag.Int("min-size", 2, "smallest served instance size")
		maxSize        = flag.Int("max-size", 512, "largest served instance size")
		workers        = flag.Int("workers", 0, "session worker goroutines (0 = GOMAXPROCS)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
	)
	flag.Parse()

	var sessOpts []cc.SessionOption
	if *workers > 0 {
		sessOpts = append(sessOpts, cc.WithWorkers(*workers))
	}
	srv := serve.New(serve.Config{
		MemoryBudget:   *budgetMB << 20,
		QueueCap:       *queueCap,
		TenantQueueCap: *tenantQueueCap,
		MaxBatch:       *maxBatch,
		MaxWait:        *maxWait,
		MinSize:        *minSize,
		MaxSize:        *maxSize,
		SessionOptions: sessOpts,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("ccserve listening on %s (budget %d MiB, queues %d deep, batches ≤%d/%v, sizes %d–%d)",
		*addr, *budgetMB, *queueCap, *maxBatch, *maxWait, *minSize, *maxSize)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("ccserve: %v — draining", sig)
	case err := <-errc:
		log.Fatalf("ccserve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the service plane so
	// every admitted request is answered before exit.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("ccserve: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("ccserve: drain: %v", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("ccserve: %v", err)
	}
	fmt.Println("ccserve: drained cleanly")
}
