// Command ccviz renders the paper's three figures as text diagrams
// computed from the actual partitioning code, so the figures are
// regenerated from the implementation rather than redrawn:
//
//	ccviz fig1   # Figure 1: semiring (3D) matmul partitioning, n = 27
//	ccviz fig2   # Figure 2: fast matmul two-level grid, n = 16
//	ccviz fig3   # Figure 3: 4-cycle detection tile packing (Lemma 12)
package main

import (
	"fmt"
	"os"

	"github.com/algebraic-clique/algclique/internal/bilinear"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/subgraph"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Println("usage: ccviz fig1|fig2|fig3")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "fig1":
		fig1()
	case "fig2":
		fig2()
	case "fig3":
		fig3()
	default:
		fmt.Fprintf(os.Stderr, "ccviz: unknown figure %q\n", os.Args[1])
		os.Exit(2)
	}
}

// fig1 shows the §2.1 partitioning for n = 27 (c = 3): node v = v1v2v3
// owns the product block S[v1**, v2**] · T[v2**, v3**].
func fig1() {
	const c = 3
	fmt.Println("Figure 1 — semiring (3D) matrix multiplication, n = c³ = 27")
	fmt.Println()
	fmt.Println("Node v = v1v2v3 (base-3 digits) computes")
	fmt.Println("    P^(v2)[v1**, v3**] = S[v1**, v2**] · T[v2**, v3**]")
	fmt.Println()
	fmt.Println("Assignment of the c×c×c = 27 subcubes of V×V×V:")
	fmt.Println()
	fmt.Println("            S-columns / T-rows (v2)")
	for v1 := 0; v1 < c; v1++ {
		for v3 := 0; v3 < c; v3++ {
			fmt.Printf("  P rows v1=%d, P cols v3=%d:", v1, v3)
			for v2 := 0; v2 < c; v2++ {
				v := v1*c*c + v2*c + v3
				fmt.Printf("  v2=%d→node %2d", v2, v)
			}
			fmt.Println()
		}
	}
	fmt.Println()
	fmt.Println("Each node sends/receives 2n^{4/3} words in step 1 and n^{4/3} in")
	fmt.Println("step 3; the routing layer delivers both in O(n^{1/3}) rounds.")
}

// fig2 shows the §2.2 two-level grid for n = 16 (q = 4) under the scheme
// bilinear.Pick(16) (Strassen, d = 2).
func fig2() {
	const n, q = 16, 4
	scheme, err := bilinear.Pick(n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccviz:", err)
		os.Exit(1)
	}
	d := scheme.D
	fmt.Printf("Figure 2 — fast matrix multiplication, n = q² = %d, scheme %v\n\n", n, scheme)
	fmt.Printf("Outer partition: d×d = %d×%d blocks S[i**, j**] (block rows/cols of size n/d = %d)\n", d, d, n/d)
	fmt.Printf("Inner partition: each block splits into q×q = %d×%d sub-blocks S[ix*, jy*] of size q/d = %d\n\n", q, q, q/d)

	fmt.Println("Matrix row of index u = u1u2u3 (u1 ∈ [d], u2 ∈ [q], u3 ∈ [q/d]):")
	for u := 0; u < n; u++ {
		u1 := u / (q * (q / d))
		u2 := (u / (q / d)) % q
		u3 := u % (q / d)
		fmt.Printf("  u=%2d → (i=%d, x=%d, ·=%d)", u, u1, u2, u3)
		if (u+1)%4 == 0 {
			fmt.Println()
		}
	}
	fmt.Println()
	fmt.Println("Secondary labels ℓ(v) = (x1, x2) ∈ [q]²; node v = x1·q + x2 holds")
	fmt.Println("S[*x1*, *x2*] after step 1 and the pieces Ŝ(w)[x1*, x2*] after step 2:")
	fmt.Println()
	fmt.Print("      ")
	for x2 := 0; x2 < q; x2++ {
		fmt.Printf(" x2=%d", x2)
	}
	fmt.Println()
	for x1 := 0; x1 < q; x1++ {
		fmt.Printf("  x1=%d", x1)
		for x2 := 0; x2 < q; x2++ {
			fmt.Printf("  %3d", x1*q+x2)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("Step 4 runs the scheme's m = %d block products, one per node w < m.\n", scheme.M)
}

// fig3 renders a Lemma 12 tile allocation for a skewed random graph.
func fig3() {
	const n = 32
	g := graphs.PreferentialAttachment(n, 2, 42)
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.OutDegree(v)
	}
	tiles, err := subgraph.AllocateTiles(degs, n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccviz:", err)
		os.Exit(1)
	}
	k := 1
	for k*2 <= n {
		k *= 2
	}
	fmt.Printf("Figure 3 — 4-cycle detection tile packing (Lemma 12), n = %d, k = %d\n\n", n, k)
	fmt.Println("Sample graph: preferential attachment (skewed degrees).")
	fmt.Printf("Tiles A(y)×B(y) with side f(y) = max(1, 2^⌊log₂(deg(y)/4)⌋):\n\n")

	grid := make([][]byte, k)
	for r := range grid {
		grid[r] = make([]byte, k)
		for c := range grid[r] {
			grid[r][c] = '.'
		}
	}
	letter := func(y int) byte {
		if y < 26 {
			return byte('a' + y)
		}
		return byte('A' + (y-26)%26)
	}
	for _, t := range tiles {
		if t.F == 0 {
			continue
		}
		for r := t.Row; r < t.Row+t.F; r++ {
			for c := t.Col; c < t.Col+t.F; c++ {
				grid[r][c] = letter(t.Y)
			}
		}
	}
	for _, row := range grid {
		fmt.Printf("  %s\n", string(row))
	}
	fmt.Println()
	fmt.Println("  y  deg(y)  f(y)   A(y) rows      B(y) cols")
	for _, t := range tiles {
		if t.F == 0 {
			continue
		}
		fmt.Printf("  %c %6d %5d   [%2d, %2d)       [%2d, %2d)\n",
			letter(t.Y), degs[t.Y], t.F, t.Row, t.Row+t.F, t.Col, t.Col+t.F)
	}
	fmt.Println()
	fmt.Println("Disjoint tiles ⇒ each (a, b) pair forwards the neighbourhood of at")
	fmt.Println("most one y in step 2, keeping every link at O(1) words (Theorem 4).")
}
