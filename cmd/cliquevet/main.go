// Command cliquevet runs the repository's contract-enforcing analyzer
// suite (see internal/analysis): Mail lifetime, payload ownership, charge
// parity, chunk offsets, determinism, and hot-path allocation discipline.
//
// Standalone (the CI gating step):
//
//	go run ./cmd/cliquevet ./...
//
// As a go vet tool (the local one-liner, see README "Tooling"):
//
//	go build -o /tmp/cliquevet ./cmd/cliquevet && go vet -vettool=/tmp/cliquevet ./...
//
// In vettool mode the go command invokes the binary once per package with
// a *.cfg JSON file; cliquevet re-type-checks that package from source
// through the same offline loader the standalone mode uses, so both modes
// agree exactly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/algebraic-clique/algclique/internal/analysis"
	"github.com/algebraic-clique/algclique/internal/analysis/framework"
)

func main() {
	// go vet probes the tool twice before use: -V=full must print a
	// stable identity line, and -flags must print the supported flags as
	// JSON (none). Handle both before normal flag parsing.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full":
			fmt.Printf("cliquevet version 1 (offline contract suite)\n")
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, c := range analysis.Checks() {
			fmt.Printf("%-14s %s\n", c.Analyzer.Name, c.Analyzer.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetTool(args[0]))
	}
	os.Exit(runStandalone())
}

// runStandalone analyses the whole module containing the working
// directory (any ./... style arguments select the same scope — the suite
// is repo-global by design).
func runStandalone() int {
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := framework.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.RunRepo(root)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cliquevet: %d contract violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig is the subset of the go vet unit-checker config cliquevet
// needs: the package identity and where to write the (empty) facts file
// the go command caches.
type vetConfig struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool implements the go vet driver protocol for one package.
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(err)
	}
	// cliquevet keeps no cross-package facts; go vet only requires that
	// the output file exists.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatal(err)
		}
	}
	dir := cfg.Dir
	if dir == "" && len(cfg.GoFiles) > 0 {
		dir = filepath.Dir(cfg.GoFiles[0])
	}
	root, err := framework.FindModuleRoot(dir)
	if err != nil {
		// Outside the module (stdlib facts pass): nothing to check.
		return 0
	}
	loader := framework.NewLoader(map[string]string{analysis.ModulePath: root})
	pkg, err := loader.LoadDir(dir, cfg.ImportPath)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	diags, err := analysis.RunPackages([]*framework.Package{pkg})
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2 // the go vet convention for "diagnostics reported"
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cliquevet:", err)
	os.Exit(1)
}
