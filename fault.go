package algclique

import (
	"fmt"

	"github.com/algebraic-clique/algclique/internal/clique"
)

// This file is the public surface of the fault plane: seeded chaos
// injection (WithFaultInjection), probabilistic result certification
// (WithCertification), and the retry loop that ties them together. See
// DESIGN.md "Fault plane" for the taxonomy and the certification math.

// FaultPlan is a seeded, deterministic fault schedule armed on one
// operation with WithFaultInjection. The zero value injects nothing; a
// plan must set Seed explicitly — the same plan injects the same faults on
// every run. See clique.FaultPlan for the knobs.
type FaultPlan = clique.FaultPlan

// FaultStats ledgers every fault injected into an operation; it is
// reported in Stats.Faults and inside FaultError.
type FaultStats = clique.FaultStats

// FaultError is the typed error surfaced when an operation was disrupted
// by injected faults and could not be recovered (or its result could not
// be trusted): a crashed node's send, a fault storm exhausting the retry
// budget, or a completed product that no certification vouched for.
type FaultError = clique.FaultError

// FaultKind classifies an injected fault (see the Fault… constants).
type FaultKind = clique.FaultKind

// Re-exported fault kinds.
const (
	FaultCorrupt   = clique.FaultCorrupt
	FaultDrop      = clique.FaultDrop
	FaultDuplicate = clique.FaultDuplicate
	FaultCrash     = clique.FaultCrash
	FaultStraggle  = clique.FaultStraggle
	FaultDisrupt   = clique.FaultDisrupt
)

// DefaultCertificationRetries is the retry budget an operation gets when
// certification is armed without an explicit WithCertificationRetries.
const DefaultCertificationRetries = 3

// WithFaultInjection arms a seeded fault plan on the operation: link
// deliveries are corrupted, dropped, or duplicated, a node can fail-stop,
// and flushes can straggle, all deterministically in the plan's seed. The
// operation either recovers to a bit-correct result (retries under a
// certification budget), or fails with a typed error — *FaultError,
// *CertificationError, or the engine's own error — never a hang and never
// a silently wrong answer: a product that completes while data faults
// fired is only returned when certification vouched for it.
//
// Fault injection requires the unicast simulator; broadcast-model
// operations reject it. Disarmed operations (no plan) pay one nil check
// per send and flush.
func WithFaultInjection(plan FaultPlan) CallOption {
	return callOpt(func(c *config) { p := plan; c.fault = &p })
}

// WithCertification verifies every product the operation returns before
// returning it, and re-runs the product (fresh fault draws, fresh probe
// seed) when verification fails, up to the retry budget
// (DefaultCertificationRetries unless WithCertificationRetries says
// otherwise).
//
// k is the check's strength. Integer products use Freivalds' certificate:
// k probe vectors, one broadcast round each, false-accept probability at
// most 2⁻ᵏ. Boolean and min-plus products have no subtraction, so
// Freivalds does not apply; they use deterministic seed-derived
// spot-checks instead — every node re-derives k entries of its output row
// from first principles, and k = n audits every entry. k ≤ 0 disables
// certification.
func WithCertification(k int) CallOption {
	return callOpt(func(c *config) { c.certifyProbes = k })
}

// WithCertificationRetries bounds how many times a product is re-run when
// certification fails or injected faults disrupt it (m = 0 disables
// retries; the first failure surfaces). Without certification the default
// budget is 0: an uncertified re-run could not be trusted any more than
// the first.
func WithCertificationRetries(m int) CallOption {
	return callOpt(func(c *config) { c.certifyRetries = m })
}

// CertificationError reports a product whose result kept failing
// certification after the retry budget was spent — either faults hit every
// attempt, or (with no faults armed) the engine computed a wrong product,
// which is a bug worth reporting.
type CertificationError struct {
	// Op is the operation whose result failed certification.
	Op string
	// Attempts is how many times the product ran.
	Attempts int
	// Probes is the certification strength that rejected it.
	Probes int
	// Injected ledgers the faults fired across all attempts.
	Injected FaultStats
}

// Error implements error.
func (e *CertificationError) Error() string {
	return fmt.Sprintf("algclique: %s failed certification after %d attempt(s) (%d probes, %d faults injected)",
		e.Op, e.Attempts, e.Probes, e.Injected.Fired())
}

// dataFaults counts the faults that can change delivered data — the ones
// that make an uncertified result untrustworthy. Straggles stretch rounds
// but never touch data.
func dataFaults(s FaultStats) int64 { return s.Corrupted + s.Dropped + s.Duplicated }

// certSeed derives the probe seed for one certification attempt: fresh
// per attempt, deterministic in the call seed.
func certSeed(seed uint64, attempt int) uint64 {
	return seed ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15
}
