package algclique_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/algebraic-clique/algclique"
)

// sparseMatFor draws an n×n integer matrix with roughly perRow nonzeros
// per row.
func sparseMatFor(rng *rand.Rand, n, perRow int, maxVal int64) algclique.Mat {
	m := make(algclique.Mat, n)
	for v := range m {
		m[v] = make([]int64, n)
		for k := 0; k < perRow; k++ {
			m[v][rng.IntN(n)] = 1 + rng.Int64N(maxVal)
		}
	}
	return m
}

// expandProduct flattens either arm of a CSR product into a dense matrix
// for comparison against the dense API.
func expandProduct(p algclique.CSRProduct, zero, one int64) algclique.Mat {
	if p.IsSparse() {
		return p.Sparse.Dense(zero, one)
	}
	return p.Dense
}

// TestCSRAPIMatMul: MatMulCSR matches MatMul entry for entry, stays
// sparse on sparse inputs, and round-trips through CSRFromMat.
func TestCSRAPIMatMul(t *testing.T) {
	for _, n := range []int{5, 16, 33, 64} {
		rng := rand.New(rand.NewPCG(uint64(n), 3))
		a := sparseMatFor(rng, n, 2, 9)
		b := sparseMatFor(rng, n, 2, 9)
		ca, err := algclique.CSRFromMat(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := algclique.CSRFromMat(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := algclique.MatMul(a, b)
		if err != nil {
			t.Fatalf("n=%d dense: %v", n, err)
		}
		got, stats, err := algclique.MatMulCSR(ca, cb)
		if err != nil {
			t.Fatalf("n=%d CSR: %v", n, err)
		}
		if !reflect.DeepEqual(expandProduct(got, 0, 1), want) {
			t.Fatalf("n=%d: CSR product differs from dense MatMul", n)
		}
		if stats.Rounds <= 0 {
			t.Fatalf("n=%d: no rounds recorded", n)
		}
	}
}

// TestCSRAPIDenseInputFallsBack: a dense operand routes to a dense
// engine and comes back as a dense matrix, bit-identical to MatMul.
func TestCSRAPIDenseInputFallsBack(t *testing.T) {
	const n = 48
	a := make(algclique.Mat, n)
	for v := range a {
		a[v] = make([]int64, n)
		for j := range a[v] {
			a[v][j] = int64(1 + (v+j)%5)
		}
	}
	ca, err := algclique.CSRFromMat(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := algclique.MatMulCSR(ca, ca)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsSparse() {
		t.Fatal("dense operands stayed sparse; want dense fallback")
	}
	want, _, err := algclique.MatMul(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Dense, want) {
		t.Fatal("densified CSR product differs from MatMul")
	}
}

// TestCSRAPISquareAdjacency: SquareAdjacencyCSR on a nil-Val adjacency
// equals SquareAdjacencySparse (2-walk counts) on the same graph.
func TestCSRAPISquareAdjacency(t *testing.T) {
	const n = 100 // large enough that the Auto census prefers the CSR plane
	rng := rand.New(rand.NewPCG(7, 8))
	g := algclique.NewGraph(n, false)
	am := make(algclique.Mat, n)
	for v := range am {
		am[v] = make([]int64, n)
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v {
			g.AddEdge(u, v)
			am[u][v], am[v][u] = 1, 1
		}
	}
	want, _, err := algclique.SquareAdjacencySparse(g)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := algclique.CSRFromMat(am, 0)
	if err != nil {
		t.Fatal(err)
	}
	adj.Val = nil // adjacency encoding: structure only
	got, stats, err := algclique.SquareAdjacencyCSR(adj)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSparse() {
		t.Fatal("sparse adjacency square densified")
	}
	if stats.Rounds <= 0 || stats.Words <= 0 {
		t.Fatalf("stats = %d rounds / %d words; the deferred ledger capture is broken", stats.Rounds, stats.Words)
	}
	if !reflect.DeepEqual(expandProduct(got, 0, 1), want) {
		t.Fatal("SquareAdjacencyCSR differs from SquareAdjacencySparse")
	}
}

// TestCSRAPIDistanceProduct: DistanceProductCSR with unstored = Inf
// matches DistanceProduct on the expanded matrices.
func TestCSRAPIDistanceProduct(t *testing.T) {
	const n = 24
	rng := rand.New(rand.NewPCG(9, 10))
	d := make(algclique.Mat, n)
	for v := range d {
		d[v] = make([]int64, n)
		for j := range d[v] {
			if rng.IntN(6) == 0 {
				d[v][j] = 1 + rng.Int64N(20)
			} else {
				d[v][j] = algclique.Inf
			}
		}
	}
	cd, err := algclique.CSRFromMat(d, algclique.Inf)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := algclique.DistanceProduct(d, d)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := algclique.DistanceProductCSR(cd, cd)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(expandProduct(got, algclique.Inf, 0), want) {
		t.Fatal("DistanceProductCSR differs from DistanceProduct")
	}
}

// TestCSRAPIAPSP: APSPCSR distances equal the dense APSP distances on a
// sparse weighted digraph, and stay sparse when the graph is disconnected
// enough.
func TestCSRAPIAPSP(t *testing.T) {
	const n = 30
	rng := rand.New(rand.NewPCG(11, 12))
	g := algclique.NewWeighted(n, true)
	wm := make(algclique.Mat, n)
	for v := range wm {
		wm[v] = make([]int64, n)
		for j := range wm[v] {
			wm[v][j] = algclique.Inf
		}
	}
	for i := 0; i < n; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v {
			w := 1 + rng.Int64N(9)
			g.SetEdge(u, v, w)
			wm[u][v] = w
		}
	}
	want, _, err := algclique.APSP(g)
	if err != nil {
		t.Fatal(err)
	}
	// The CSR operand stores the finite off-diagonal entries of the
	// weight matrix.
	cw, err := algclique.CSRFromMat(wm, algclique.Inf)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := algclique.APSPCSR(cw)
	if err != nil {
		t.Fatal(err)
	}
	dist := expandProduct(got, algclique.Inf, 0)
	if !reflect.DeepEqual(dist, want.Dist) {
		t.Fatal("APSPCSR distances differ from APSP")
	}
}

// TestCSRAPITransitiveClosure: TransitiveClosureCSR equals the dense
// TransitiveClosure reachability matrix.
func TestCSRAPITransitiveClosure(t *testing.T) {
	const n = 26
	rng := rand.New(rand.NewPCG(13, 14))
	g := algclique.NewGraph(n, true)
	am := make(algclique.Mat, n)
	for v := range am {
		am[v] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v {
			g.AddEdge(u, v)
			am[u][v] = 1
		}
	}
	want, _, err := algclique.TransitiveClosure(g)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := algclique.CSRFromMat(am, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := algclique.TransitiveClosureCSR(adj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(expandProduct(got, 0, 1), want) {
		t.Fatal("TransitiveClosureCSR differs from TransitiveClosure")
	}
}

// TestCSRAPISessionLedger: CSR operations record in the session ledger
// like any other operation, and operand size mismatches error.
func TestCSRAPISessionLedger(t *testing.T) {
	const n = 16
	s, err := algclique.NewClique(n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewPCG(17, 18))
	a, err := algclique.CSRFromMat(sparseMatFor(rng, n, 2, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.MatMulCSR(a, a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.MatMulBoolCSR(a, a); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Ops) != 2 || st.Ops[0].Op != "MatMulCSR" || st.Ops[1].Op != "MatMulBoolCSR" {
		t.Fatalf("ledger = %+v, want MatMulCSR then MatMulBoolCSR", st.Ops)
	}
	if st.Rounds <= 0 {
		t.Fatalf("session ledger rounds = %d", st.Rounds)
	}

	small, err := algclique.CSRFromMat(sparseMatFor(rng, n-1, 1, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.MatMulCSR(small, small); err == nil {
		t.Fatal("size-mismatched CSR operand accepted")
	}
	if _, err := algclique.CSRFromMat(algclique.Mat{{1, 2}, {3}}, 0); err == nil {
		t.Fatal("ragged matrix accepted by CSRFromMat")
	}
	b := *a
	b.N = n - 1
	if _, _, err := s.MatMulCSR(a, &b); err == nil {
		t.Fatal("operand pair size mismatch accepted")
	}
}
