package algclique_test

import (
	"fmt"

	cc "github.com/algebraic-clique/algclique"
)

func ExampleMatMul() {
	a := [][]int64{
		{1, 2},
		{3, 4},
	}
	b := [][]int64{
		{5, 6},
		{7, 8},
	}
	p, _, err := cc.MatMul(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Println(p[0], p[1])
	// Output: [19 22] [43 50]
}

func ExampleCountTriangles() {
	g := cc.Complete(5, false) // K5 has C(5,3) = 10 triangles
	count, stats, err := cc.CountTriangles(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d triangles on a %d-node clique\n", count, stats.N)
	// Output: 10 triangles on a 8-node clique
}

func ExampleDetectFourCycle() {
	square := cc.Cycle(4, false)
	found, _, err := cc.DetectFourCycle(square)
	if err != nil {
		panic(err)
	}
	pentagon := cc.Cycle(5, false)
	notFound, _, err := cc.DetectFourCycle(pentagon)
	if err != nil {
		panic(err)
	}
	fmt.Println(found, notFound)
	// Output: true false
}

func ExampleAPSP() {
	g := cc.NewWeighted(4, true)
	g.SetEdge(0, 1, 2)
	g.SetEdge(1, 2, 3)
	g.SetEdge(2, 3, 1)
	g.SetEdge(0, 3, 10)
	res, _, err := cc.APSP(g)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Dist[0][3], res.Path(0, 3))
	// Output: 6 [0 1 2 3]
}

func ExampleGirth() {
	g, ok, _, err := cc.Girth(cc.Petersen(), cc.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println(g, ok)
	// Output: 5 true
}

func ExampleDistanceProduct() {
	inf := cc.Inf
	w := [][]int64{
		{0, 4, inf},
		{inf, 0, 5},
		{2, inf, 0},
	}
	p, _, err := cc.DistanceProduct(w, w)
	if err != nil {
		panic(err)
	}
	fmt.Println(p[0][2], p[2][1]) // 0→1→2 and 2→0→1
	// Output: 9 6
}

func ExampleTransitiveClosure() {
	g := cc.NewGraph(4, true)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	reach, _, err := cc.TransitiveClosure(g)
	if err != nil {
		panic(err)
	}
	fmt.Println(reach[0][2], reach[2][0])
	// Output: 1 0
}

func ExampleAPSPUnweighted() {
	res, _, err := cc.APSPUnweighted(cc.Path(6, false))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Dist[0][5])
	// Output: 5
}
