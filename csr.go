package algclique

import (
	"fmt"
	"math/bits"
	"reflect"

	"github.com/algebraic-clique/algclique/internal/ccmm"
	"github.com/algebraic-clique/algclique/internal/matrix"
)

// This file is the session surface of the CSR operand plane: matrix
// products and iterated-product algorithms whose operands, intermediates,
// and (density permitting) results are compressed sparse rows, so a
// product on a ρ-nonzero instance costs Θ(n + ρ + traffic) memory however
// large n² is. The density-aware planner stays in charge: each product
// runs its census on the row-pointer differences (free — no dense scan
// exists to do), routes sparse when the predicted sparse schedule wins,
// and otherwise densifies through the session's pooled buffers — except
// above the densification cap, where falling back would allocate exactly
// the Θ(n²) state the CSR plane exists to avoid, and the product errors
// with ErrSparseTooDense instead.

// CSR is an n×n sparse matrix in compressed-sparse-row form: row v's
// entries are Col[RowPtr[v]:RowPtr[v+1]] (strictly increasing column
// indices) paired with Val[RowPtr[v]:RowPtr[v+1]]. Entries not stored are
// the operation's zero — 0 for integer and Boolean products, Inf for
// min-plus — and a nil Val means every stored entry is the operation's
// one (1 for integer/Boolean, weight 0 for min-plus): the adjacency
// encoding, stored structure only.
type CSR struct {
	N      int
	RowPtr []int64
	Col    []int32
	Val    []int64
}

// NNZ returns the stored-entry count.
func (m *CSR) NNZ() int64 {
	if len(m.RowPtr) == 0 {
		return 0
	}
	return m.RowPtr[m.N]
}

// internal views the public CSR as the engine's operand type — zero-copy,
// the backing arrays are shared.
func (m *CSR) internal() *matrix.CSR[int64] {
	return &matrix.CSR[int64]{N: m.N, RowPtr: m.RowPtr, Col: m.Col, Val: m.Val}
}

// CSRFromMat compresses a dense matrix, keeping entries different from
// zero (pass 0 for integer/Boolean matrices, Inf for distance matrices).
func CSRFromMat(rows Mat, zero int64) (*CSR, error) {
	n, err := squareSize(rows, rows)
	if err != nil {
		return nil, err
	}
	out := &CSR{N: n, RowPtr: make([]int64, n+1)}
	for v, row := range rows {
		for j, x := range row {
			if x != zero {
				out.Col = append(out.Col, int32(j))
				out.Val = append(out.Val, x)
			}
		}
		out.RowPtr[v+1] = int64(len(out.Col))
	}
	return out, nil
}

// Dense expands the matrix, filling unstored entries with zero and
// stored-but-valueless entries (nil Val) with one.
func (m *CSR) Dense(zero, one int64) Mat {
	out := make(Mat, m.N)
	for v := 0; v < m.N; v++ {
		row := make([]int64, m.N)
		if zero != 0 {
			for j := range row {
				row[j] = zero
			}
		}
		lo, hi := m.RowPtr[v], m.RowPtr[v+1]
		for i := lo; i < hi; i++ {
			if m.Val == nil {
				row[m.Col[i]] = one
			} else {
				row[m.Col[i]] = m.Val[i]
			}
		}
		out[v] = row
	}
	return out
}

// CSRProduct is the result of a CSR product: exactly one field is set.
// Sparse is the product when it stayed on the CSR plane; Dense is the
// expanded result when the planner routed (or fell back) to a dense
// engine because the operands or the fill-in were too dense — the values
// are bit-identical between the two forms, only the representation
// follows the density.
type CSRProduct struct {
	Sparse *CSR
	Dense  Mat
}

// IsSparse reports whether the product stayed on the CSR plane.
func (p CSRProduct) IsSparse() bool { return p.Sparse != nil }

// csrPairSize validates a CSR operand pair's sizes against each other.
func csrPairSize(a, b *CSR) (int, error) {
	if a.N != b.N {
		return 0, fmt.Errorf("algclique: CSR operand sizes %d and %d differ: %w", a.N, b.N, ccmm.ErrSize)
	}
	return a.N, nil
}

// padCSRTo views a CSR operand on a padded clique of size n: the padding
// rows are empty, so the padded product restricted to the original block
// is unchanged. Zero-copy when no padding is needed; otherwise only the
// row-pointer array is rebuilt (the entry arrays are shared).
func padCSRTo(m *CSR, n int) *matrix.CSR[int64] {
	if m.N == n {
		return m.internal()
	}
	rp := make([]int64, n+1)
	copy(rp, m.RowPtr)
	for v := m.N + 1; v <= n; v++ {
		rp[v] = m.RowPtr[m.N]
	}
	return &matrix.CSR[int64]{N: n, RowPtr: rp, Col: m.Col, Val: m.Val}
}

// truncCSR clips an engine result on a padded clique back to the original
// instance. Padding rows are empty and padded columns unreachable except
// through entries this clips away (the self-loops iterated algorithms
// seed), so dropping the tail of each array is exact.
func truncCSR(m *matrix.CSR[int64], orig int) *CSR {
	if m.N == orig {
		return &CSR{N: m.N, RowPtr: m.RowPtr, Col: m.Col, Val: m.Val}
	}
	nnz := m.RowPtr[orig]
	out := &CSR{N: orig, RowPtr: m.RowPtr[:orig+1], Col: m.Col[:nnz]}
	if m.Val != nil {
		out.Val = m.Val[:nnz]
	}
	return out
}

// publicProduct converts an engine product to the public form, clipping
// padding and pooling a densified result's buffer after the copy out.
func (r *opRun) publicProduct(p ccmm.CSRProduct[int64]) CSRProduct {
	if p.Sparse != nil {
		return CSRProduct{Sparse: truncCSR(p.Sparse, r.orig)}
	}
	out := CSRProduct{Dense: truncateRows(p.Dense, r.orig)}
	r.recycle(p.Dense)
	return out
}

// csrSpec ties a CSR product entry point to its routed plan product.
type csrSpec struct {
	op    string
	class sizeClass
	mul   func(r *opRun, a, b *matrix.CSR[int64]) (ccmm.CSRProduct[int64], ccmm.Route, error)
}

var matMulCSRSpec = csrSpec{op: "MatMulCSR", class: ringSize,
	mul: func(r *opRun, a, b *matrix.CSR[int64]) (ccmm.CSRProduct[int64], ccmm.Route, error) {
		return r.plan.MulIntCSRRouted(r.net, r.sc, a, b)
	}}

var matMulBoolCSRSpec = csrSpec{op: "MatMulBoolCSR", class: ringSize,
	mul: func(r *opRun, a, b *matrix.CSR[int64]) (ccmm.CSRProduct[int64], ccmm.Route, error) {
		return r.plan.MulBoolCSRRouted(r.net, r.sc, a, b)
	}}

var distanceProductCSRSpec = csrSpec{op: "DistanceProductCSR", class: anySize,
	mul: func(r *opRun, a, b *matrix.CSR[int64]) (ccmm.CSRProduct[int64], ccmm.Route, error) {
		return r.plan.MulMinPlusCSRRouted(r.net, r.sc, a, b)
	}}

// csrProduct is the shared harness for the one-product CSR entry points.
func (s *Clique) csrProduct(spec csrSpec, a, b *CSR, opts []CallOption) (prod CSRProduct, stats Stats, err error) {
	orig, err := csrPairSize(a, b)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	r, err := s.begin(spec.op, orig, spec.class, opts)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	defer r.end(&stats, &err)
	p, route, perr := spec.mul(r, padCSRTo(a, r.n), padCSRTo(b, r.n))
	r.route = route
	if perr != nil {
		err = perr
		return
	}
	prod = r.publicProduct(p)
	return
}

// MatMulCSR multiplies two n×n integer matrices given as compressed
// sparse rows, never materialising a dense operand unless the density
// census routes the product to a dense engine (Stats.Routing reports the
// decision; above the densification cap a too-dense product returns
// ErrSparseTooDense instead). The result is sparse whenever the product
// ran on the CSR plane.
func (s *Clique) MatMulCSR(a, b *CSR, opts ...CallOption) (CSRProduct, Stats, error) {
	return s.csrProduct(matMulCSRSpec, a, b, opts)
}

// MatMulCSR is the one-shot form of Clique.MatMulCSR.
func MatMulCSR(a, b *CSR, opts ...Option) (CSRProduct, Stats, error) {
	s, err := oneShot(a.N, opts)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	defer s.Close()
	return s.MatMulCSR(a, b)
}

// MatMulBoolCSR computes the Boolean product of CSR matrices. Stored
// entries are read as true whatever their value (store only true entries;
// a nil Val is the usual adjacency encoding), and a sparse result comes
// back value-free — every stored entry is 1.
func (s *Clique) MatMulBoolCSR(a, b *CSR, opts ...CallOption) (CSRProduct, Stats, error) {
	return s.csrProduct(matMulBoolCSRSpec, a, b, opts)
}

// MatMulBoolCSR is the one-shot form of Clique.MatMulBoolCSR.
func MatMulBoolCSR(a, b *CSR, opts ...Option) (CSRProduct, Stats, error) {
	s, err := oneShot(a.N, opts)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	defer s.Close()
	return s.MatMulBoolCSR(a, b)
}

// DistanceProductCSR computes the min-plus product of CSR distance
// matrices: unstored entries are +∞, so a sparse distance matrix stores
// exactly its finite entries, and a nil Val means every stored edge has
// weight 0.
func (s *Clique) DistanceProductCSR(a, b *CSR, opts ...CallOption) (CSRProduct, Stats, error) {
	if s.cfg.engine == Fast {
		return CSRProduct{}, Stats{}, fmt.Errorf("algclique: min-plus is not a ring; use Auto, Semiring3D or Naive: %w", ccmm.ErrSize)
	}
	return s.csrProduct(distanceProductCSRSpec, a, b, opts)
}

// DistanceProductCSR is the one-shot form of Clique.DistanceProductCSR.
func DistanceProductCSR(a, b *CSR, opts ...Option) (CSRProduct, Stats, error) {
	s, err := oneShot(a.N, opts)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	defer s.Close()
	return s.DistanceProductCSR(a, b)
}

// SquareAdjacencyCSR computes A² (2-walk counts) of a CSR adjacency
// matrix — the CSR-native form of SquareAdjacencySparse, with the Auto
// census in charge instead of a forced engine: sparse adjacencies square
// on the CSR plane in O(1) rounds without ever allocating a dense row,
// dense ones densify through the planner (below the cap). A nil Val is
// the natural encoding.
func (s *Clique) SquareAdjacencyCSR(a *CSR, opts ...CallOption) (prod CSRProduct, stats Stats, err error) {
	r, err := s.begin("SquareAdjacencyCSR", a.N, ringSize, opts)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	defer r.end(&stats, &err)
	pa := padCSRTo(a, r.n)
	p, route, perr := r.plan.MulIntCSRRouted(r.net, r.sc, pa, pa)
	r.route = route
	if perr != nil {
		err = perr
		return
	}
	prod = r.publicProduct(p)
	return
}

// SquareAdjacencyCSR is the one-shot form of Clique.SquareAdjacencyCSR.
func SquareAdjacencyCSR(a *CSR, opts ...Option) (CSRProduct, Stats, error) {
	s, err := oneShot(a.N, opts)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	defer s.Close()
	return s.SquareAdjacencyCSR(a)
}

// withDiagonal merges the identity's entries into a CSR view: every row
// gains a (v, v, diag) entry unless it already stores column v, in which
// case the stored entry wins. It is how the iterated-squaring loops seed
// their reflexive base case without a dense pass.
func withDiagonal(m *matrix.CSR[int64], n int, diag int64, keepVal bool) *matrix.CSR[int64] {
	out := &matrix.CSR[int64]{N: n, RowPtr: make([]int64, n+1)}
	out.Col = make([]int32, 0, int64(n)+m.RowPtr[n])
	if keepVal {
		out.Val = make([]int64, 0, int64(n)+m.RowPtr[n])
	}
	push := func(c int32, v int64) {
		out.Col = append(out.Col, c)
		if keepVal {
			out.Val = append(out.Val, v)
		}
	}
	for v := 0; v < n; v++ {
		cols, vals := m.Row(v)
		placed := false
		for i, c := range cols {
			if !placed && int(c) >= v {
				if int(c) == v {
					push(c, diag) // the diagonal of an iterated square is the one element
					placed = true
					continue
				}
				push(int32(v), diag)
				placed = true
			}
			if vals == nil {
				push(c, 1)
			} else {
				push(c, vals[i])
			}
		}
		if !placed {
			push(int32(v), diag)
		}
		out.RowPtr[v+1] = int64(len(out.Col))
	}
	return out
}

// squaringIters is the iterated-squaring depth: distances and
// reachability stabilise after ⌈log₂ n⌉ squarings.
func squaringIters(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// iterateSquaring drives an iterated-squaring loop that stays CSR until
// fill-in forces densification: each squaring runs through the routed CSR
// product, and the first dense result switches the loop to the dense
// product for its remaining iterations. Either representation exits early
// at a fixed point.
func (r *opRun) iterateSquaring(d *matrix.CSR[int64], iters int,
	mulCSR func(d *matrix.CSR[int64]) (ccmm.CSRProduct[int64], ccmm.Route, error),
	mulDense func(d *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], ccmm.Route, error)) (ccmm.CSRProduct[int64], error) {
	var dd *ccmm.RowMat[int64]
	for i := 0; i < iters; i++ {
		if dd == nil {
			p, route, err := mulCSR(d)
			r.route = route
			if err != nil {
				return ccmm.CSRProduct[int64]{}, err
			}
			if p.Sparse != nil {
				if reflect.DeepEqual(p.Sparse, d) {
					break
				}
				d = p.Sparse
				continue
			}
			dd = p.Dense // fill-in densified the iterate; stay dense from here
			continue
		}
		next, route, err := mulDense(dd)
		r.route = route
		if err != nil {
			return ccmm.CSRProduct[int64]{}, err
		}
		if reflect.DeepEqual(next.Rows, dd.Rows) {
			r.recycle(next)
			break
		}
		r.recycle(dd)
		dd = next
	}
	if dd != nil {
		return ccmm.CSRProduct[int64]{Dense: dd}, nil
	}
	// The iterate may still be the caller's seeded view; products are
	// always fresh, so this aliases no pooled state.
	return ccmm.CSRProduct[int64]{Sparse: d}, nil
}

// APSPCSR computes all-pairs shortest-path distances of a nonnegatively
// weighted digraph given as a CSR matrix (stored entries are edge
// weights; nil Val means all edges have weight 0), by min-plus iterated
// squaring that stays CSR across iterations until fill-in forces
// densification. Unstored result entries are +∞ — unreachable pairs cost
// nothing, so on graphs whose components are small the whole computation
// is sublinear in n². Distances only; use APSP for routing tables.
func (s *Clique) APSPCSR(a *CSR, opts ...CallOption) (prod CSRProduct, stats Stats, err error) {
	if s.cfg.engine == Fast {
		return CSRProduct{}, Stats{}, fmt.Errorf("algclique: min-plus is not a ring; use Auto, Semiring3D or Naive: %w", ccmm.ErrSize)
	}
	r, err := s.begin("APSPCSR", a.N, anySize, opts)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	defer r.end(&stats, &err)
	d := withDiagonal(padCSRTo(a, r.n), r.n, 0, true)
	p, serr := r.iterateSquaring(d, squaringIters(a.N),
		func(d *matrix.CSR[int64]) (ccmm.CSRProduct[int64], ccmm.Route, error) {
			return r.plan.MulMinPlusCSRRouted(r.net, r.sc, d, d)
		},
		func(d *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], ccmm.Route, error) {
			return r.plan.MulMinPlusRouted(r.net, r.sc, d, d)
		},
	)
	if serr != nil {
		err = serr
		return
	}
	prod = r.publicProduct(p)
	return
}

// APSPCSR is the one-shot form of Clique.APSPCSR.
func APSPCSR(a *CSR, opts ...Option) (CSRProduct, Stats, error) {
	s, err := oneShot(a.N, opts)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	defer s.Close()
	return s.APSPCSR(a)
}

// TransitiveClosureCSR computes the reflexive-transitive closure of a CSR
// adjacency matrix (values ignored; stored entries are edges) by Boolean
// iterated squaring — the adjacency-powers pattern of the girth machinery
// — staying CSR across iterations until fill-in forces densification. A
// sparse result is value-free; a dense one is a 0/1 matrix.
func (s *Clique) TransitiveClosureCSR(a *CSR, opts ...CallOption) (prod CSRProduct, stats Stats, err error) {
	r, err := s.begin("TransitiveClosureCSR", a.N, ringSize, opts)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	defer r.end(&stats, &err)
	seed := padCSRTo(a, r.n)
	// A Boolean iterate is structure-only: drop any values up front so
	// successive iterates (which come back value-free) compare equal at
	// the fixed point.
	d := withDiagonal(&matrix.CSR[int64]{N: r.n, RowPtr: seed.RowPtr, Col: seed.Col}, r.n, 1, false)
	p, serr := r.iterateSquaring(d, squaringIters(a.N),
		func(d *matrix.CSR[int64]) (ccmm.CSRProduct[int64], ccmm.Route, error) {
			return r.plan.MulBoolCSRRouted(r.net, r.sc, d, d)
		},
		func(d *ccmm.RowMat[int64]) (*ccmm.RowMat[int64], ccmm.Route, error) {
			return r.plan.MulBoolRouted(r.net, r.sc, d, d)
		},
	)
	if serr != nil {
		err = serr
		return
	}
	prod = r.publicProduct(p)
	return
}

// TransitiveClosureCSR is the one-shot form of Clique.TransitiveClosureCSR.
func TransitiveClosureCSR(a *CSR, opts ...Option) (CSRProduct, Stats, error) {
	s, err := oneShot(a.N, opts)
	if err != nil {
		return CSRProduct{}, Stats{}, err
	}
	defer s.Close()
	return s.TransitiveClosureCSR(a)
}
