package algclique_test

import (
	"math/rand/v2"
	"testing"

	cc "github.com/algebraic-clique/algclique"
	"github.com/algebraic-clique/algclique/internal/graphs"
	"github.com/algebraic-clique/algclique/internal/ring"
)

func TestTransitiveClosure(t *testing.T) {
	g := cc.NewGraph(10, true)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(5, 6)
	reach, _, err := cc.TransitiveClosure(g)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		u, v int
		want int64
	}{
		{0, 3, 1}, {0, 0, 1}, {3, 0, 0}, {0, 5, 0}, {5, 6, 1}, {6, 5, 0}, {9, 9, 1},
	}
	for _, tc := range cases {
		if reach[tc.u][tc.v] != tc.want {
			t.Errorf("reach(%d,%d) = %d, want %d", tc.u, tc.v, reach[tc.u][tc.v], tc.want)
		}
	}
}

func TestTransitiveClosureMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 5; trial++ {
		n := 10 + rng.IntN(20)
		g := cc.GNP(n, 0.08, true, rng.Uint64())
		reach, _, err := cc.TransitiveClosure(g)
		if err != nil {
			t.Fatal(err)
		}
		bfs := graphs.BFSAllPairs(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := int64(0)
				if !ring.IsInf(bfs.At(u, v)) {
					want = 1
				}
				if reach[u][v] != want {
					t.Fatalf("n=%d: reach(%d,%d) = %d, want %d", n, u, v, reach[u][v], want)
				}
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	diam, connected, _, err := cc.Diameter(cc.Path(10, false))
	if err != nil || !connected || diam != 9 {
		t.Errorf("path: diam=%d connected=%v err=%v, want (9,true)", diam, connected, err)
	}
	diam, connected, _, err = cc.Diameter(cc.Petersen())
	if err != nil || !connected || diam != 2 {
		t.Errorf("petersen: diam=%d connected=%v, want (2,true)", diam, connected)
	}
	g := cc.NewGraph(8, false)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	diam, connected, _, err = cc.Diameter(g)
	if err != nil || connected || diam != 1 {
		t.Errorf("disconnected: diam=%d connected=%v, want (1,false)", diam, connected)
	}
}

func TestMatMulBroadcastSeparation(t *testing.T) {
	// Corollary 24 demonstration: the broadcast clique needs Θ(n) rounds
	// where the unicast clique needs O(n^{1/3}).
	rng := rand.New(rand.NewPCG(8, 8))
	n := 64
	a := randMat(rng, n, 10)
	b := randMat(rng, n, 10)
	pb, sb, err := cc.MatMulBroadcast(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pu, su, err := cc.MatMul(a, b, cc.WithEngine(cc.Semiring3D))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if pb[i][j] != pu[i][j] {
				t.Fatalf("broadcast product wrong at (%d,%d)", i, j)
			}
		}
	}
	if sb.Rounds != int64(2*n) {
		t.Errorf("broadcast matmul = %d rounds, want 2n = %d", sb.Rounds, 2*n)
	}
	if su.Rounds >= sb.Rounds {
		t.Errorf("unicast (%d rounds) should beat broadcast (%d rounds) at n=%d",
			su.Rounds, sb.Rounds, n)
	}
}
